//! Run reports: everything a paper figure needs from one simulation.

use memnet_net::mech::{BwMode, N_BW_MODES};
use memnet_net::{LinkId, TopologyKind};
use memnet_obs::ObsSection;
use memnet_power::{EnergyBackend, EnergyBreakdown};
use memnet_simcore::{AuditReport, SimDuration};
use serde::{Deserialize, Serialize};

use crate::trace::TraceEvent;

/// Power summary over the evaluation window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerSummary {
    /// Total joules by Figure 5 category.
    pub energy: EnergyBreakdown,
    /// Evaluation window length.
    pub window: SimDuration,
    /// Number of modules.
    pub n_hmcs: usize,
}

impl PowerSummary {
    /// Average network power, watts.
    pub fn watts(&self) -> f64 {
        self.energy.watts(self.window)
    }

    /// Average power per module, watts (Figure 5/11's y-axis).
    pub fn watts_per_hmc(&self) -> f64 {
        self.energy.watts_per_hmc(self.window, self.n_hmcs)
    }

    /// Per-category average watts per module, Figure 5 order with
    /// retransmission I/O appended last. A degenerate report with zero
    /// modules reads as all-zero, matching [`Self::watts_per_hmc`]
    /// (previously this path divided by `max(1)` and silently reported
    /// network-total watts as "per HMC").
    pub fn watts_per_hmc_by_category(&self) -> [f64; 7] {
        if self.n_hmcs == 0 {
            return [0.0; 7];
        }
        let mut cats = self.energy.watts_by_category(self.window);
        for c in &mut cats {
            *c /= self.n_hmcs as f64;
        }
        cats
    }

    /// Idle I/O energy over total energy (Figure 8's y-axis).
    pub fn idle_io_fraction(&self) -> f64 {
        self.energy.idle_io_fraction()
    }

    /// I/O energy (idle + active) over total energy.
    pub fn io_fraction(&self) -> f64 {
        self.energy.io_fraction()
    }
}

/// Per-link telemetry (Figure 13's link-hours raw data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkTelemetry {
    /// Which link.
    pub link: LinkId,
    /// Fraction of the window spent transmitting.
    pub utilization: f64,
    /// Time on (idle + active) per bandwidth mode, indexed by
    /// [`memnet_net::mech::BwMode::index`].
    pub mode_time: [SimDuration; N_BW_MODES],
    /// Time powered off.
    pub off_time: SimDuration,
    /// Time spent waking.
    pub waking_time: SimDuration,
    /// Wakeups performed.
    pub wake_count: u64,
    /// Time spent replaying CRC-corrupted packets from the retry buffer,
    /// per bandwidth mode (all zero in fault-free runs).
    pub retrans_time: [SimDuration; N_BW_MODES],
    /// Flits re-serialized by retry replays.
    pub retrans_flits: u64,
    /// Retry replays performed.
    pub retransmissions: u64,
}

/// Fault and resilience outcomes of one run (all zero without an active
/// fault scenario).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Retry replays performed across all links.
    pub retries: u64,
    /// Flits re-serialized by those replays.
    pub retransmitted_flits: u64,
    /// I/O joules spent on retransmission (the report's
    /// `energy.retrans_io`, surfaced here for the fault section).
    pub retransmission_energy: f64,
    /// ROO wakes that missed their training window and retrained.
    pub wake_timeouts: u64,
    /// Accesses aborted because their destination module was unreachable.
    pub aborted_accesses: u64,
    /// Modules re-attached over spare ports after hard link failures.
    pub rerouted_modules: usize,
    /// Modules left unreachable after route-around.
    pub unreachable_modules: usize,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: &'static str,
    /// Topology simulated.
    pub topology: TopologyKind,
    /// "small" or "big".
    pub scale: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Mechanism label.
    pub mechanism: &'static str,
    /// α used.
    pub alpha: f64,
    /// Power summary.
    pub power: PowerSummary,
    /// Processor-channel utilization (busier direction of the root edge).
    pub channel_utilization: f64,
    /// Mean utilization over all links (Figure 9's dotted series).
    pub link_utilization: f64,
    /// Mean modules traversed per memory access (Figure 6).
    pub avg_modules_traversed: f64,
    /// Reads completed in the window.
    pub completed_reads: u64,
    /// Writes retired in the window.
    pub retired_writes: u64,
    /// Accesses injected (reads + writes).
    pub injected_accesses: u64,
    /// Mean read latency, nanoseconds.
    pub mean_read_latency_ns: f64,
    /// Maximum read latency, nanoseconds.
    pub max_read_latency_ns: f64,
    /// Aggregate throughput: completed accesses per microsecond — the
    /// performance metric for degradation comparisons.
    pub accesses_per_us: f64,
    /// Management epochs completed.
    pub epochs: u64,
    /// AMS violations (forced full-power transitions).
    pub violations: u64,
    /// Discrete events the engine processed (simulator-throughput
    /// denominator for the perf harness; identical across runs with the
    /// same configuration by determinism).
    pub events_processed: u64,
    /// Runtime invariant-audit results (empty at `AuditLevel::Off`).
    pub audit: AuditReport,
    /// Fault-injection outcomes (all zero without a fault scenario).
    pub faults: FaultSummary,
    /// Per-link detail.
    pub links: Vec<LinkTelemetry>,
    /// Captured packet trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Time-series observability section (`None` unless `cfg.obs` enabled
    /// sampling or tracing — disabled runs serialize this as `null` and
    /// stay bit-identical to builds without the subsystem).
    pub obs: Option<ObsSection>,
}

/// Relative change `1 − ours/baseline`, guarded against degenerate
/// baselines: a zero or non-finite denominator (or a non-finite
/// numerator) yields 0.0 rather than ±∞/NaN, so a broken baseline run
/// reads as "no change" instead of poisoning every downstream figure.
fn relative_reduction(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 || !baseline.is_finite() || !ours.is_finite() {
        0.0
    } else {
        1.0 - ours / baseline
    }
}

impl RunReport {
    /// Performance degradation of `self` versus a baseline run, as a
    /// fraction (0.03 = 3 % slower). Negative values mean `self` was
    /// faster. Returns 0.0 for degenerate (zero or non-finite) baselines.
    pub fn degradation_vs(&self, baseline: &RunReport) -> f64 {
        relative_reduction(self.accesses_per_us, baseline.accesses_per_us)
    }

    /// Network-wide power reduction of `self` versus a baseline run, as a
    /// fraction (0.25 = 25 % less power). Returns 0.0 for degenerate
    /// (zero or non-finite) baselines.
    pub fn power_reduction_vs(&self, baseline: &RunReport) -> f64 {
        relative_reduction(self.power.watts(), baseline.power.watts())
    }

    /// Idle-I/O (plus active-I/O) power reduction versus a baseline.
    /// Returns 0.0 for degenerate (zero or non-finite) baselines.
    pub fn io_power_reduction_vs(&self, baseline: &RunReport) -> f64 {
        relative_reduction(self.power.energy.io_total(), baseline.power.energy.io_total())
    }

    /// Recomputes the run's total I/O energy from the per-link residency
    /// telemetry: every link's off/waking/per-mode times priced at the
    /// model's mode power fractions. The audit layer diffs this against
    /// the engine's accumulated [`EnergyBreakdown::io_total`] — a
    /// double-entry check that catches energy-bookkeeping bugs on either
    /// side. (Idle and active residency in a mode burn the same I/O
    /// power, so the merged `mode_time` suffices.) Takes the backend as a
    /// trait object so every energy model — analytical or IDD — is held
    /// to the same conservation law.
    pub fn expected_io_energy(&self, backend: &dyn EnergyBackend) -> f64 {
        self.links
            .iter()
            .map(|t| {
                let mut joules = backend.link_off_watts() * t.off_time.as_secs()
                    + backend.link_waking_watts() * t.waking_time.as_secs();
                for (i, mt) in t.mode_time.iter().enumerate() {
                    joules += backend.link_mode_watts(BwMode::from_index(i))
                        * (mt.as_secs() + t.retrans_time[i].as_secs());
                }
                joules
            })
            .sum()
    }

    /// Recomputes retransmission I/O energy alone from per-link
    /// retransmission residency (replay time priced at each mode's active
    /// power). The audit layer diffs this against the engine's
    /// [`EnergyBreakdown::retrans_io`] ledger — the double-entry
    /// conservation check for the fault subsystem's new energy category.
    pub fn expected_retrans_io_energy(&self, backend: &dyn EnergyBackend) -> f64 {
        self.links
            .iter()
            .map(|t| {
                t.retrans_time
                    .iter()
                    .enumerate()
                    .map(|(i, rt)| backend.link_mode_watts(BwMode::from_index(i)) * rt.as_secs())
                    .sum::<f64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_power::HmcPowerModel;

    fn report(watts_scale: f64, throughput: f64) -> RunReport {
        let energy = EnergyBreakdown {
            idle_io: 6.0 * watts_scale,
            active_io: 1.0 * watts_scale,
            logic_leak: 1.0 * watts_scale,
            logic_dyn: 0.5 * watts_scale,
            dram_leak: 1.0 * watts_scale,
            dram_dyn: 0.5 * watts_scale,
            retrans_io: 0.0,
        };
        RunReport {
            workload: "test",
            topology: TopologyKind::DaisyChain,
            scale: "small",
            policy: "full power",
            mechanism: "FP",
            alpha: 0.05,
            power: PowerSummary { energy, window: SimDuration::from_ms(1), n_hmcs: 5 },
            channel_utilization: 0.5,
            link_utilization: 0.2,
            avg_modules_traversed: 2.5,
            completed_reads: 1000,
            retired_writes: 500,
            injected_accesses: 1500,
            mean_read_latency_ns: 80.0,
            max_read_latency_ns: 200.0,
            accesses_per_us: throughput,
            epochs: 10,
            violations: 0,
            events_processed: 12345,
            audit: AuditReport::default(),
            faults: FaultSummary::default(),
            links: Vec::new(),
            trace: Vec::new(),
            obs: None,
        }
    }

    #[test]
    fn degradation_is_relative_throughput_loss() {
        let base = report(1.0, 100.0);
        let slower = report(1.0, 97.0);
        assert!((slower.degradation_vs(&base) - 0.03).abs() < 1e-12);
        assert_eq!(base.degradation_vs(&base), 0.0);
    }

    #[test]
    fn power_reduction_is_relative_watts() {
        let base = report(1.0, 100.0);
        let saver = report(0.8, 100.0);
        assert!((saver.power_reduction_vs(&base) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn io_reduction_considers_only_io() {
        let base = report(1.0, 100.0);
        let mut saver = report(1.0, 100.0);
        saver.power.energy.idle_io = 3.5; // halve idle I/O only
        let expected = 1.0 - (3.5 + 1.0) / 7.0;
        assert!((saver.io_power_reduction_vs(&base) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_baselines_compare_as_no_change() {
        let zero = report(0.0, 0.0);
        let real = report(1.0, 100.0);
        assert_eq!(real.degradation_vs(&zero), 0.0);
        assert_eq!(real.power_reduction_vs(&zero), 0.0);
        assert_eq!(real.io_power_reduction_vs(&zero), 0.0);
        // A zero run against a real baseline is a valid 100 % reduction.
        assert_eq!(zero.power_reduction_vs(&real), 1.0);
    }

    #[test]
    fn non_finite_baselines_compare_as_no_change() {
        let real = report(1.0, 100.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut base = report(1.0, 100.0);
            base.accesses_per_us = bad;
            base.power.energy.idle_io = bad;
            assert_eq!(real.degradation_vs(&base), 0.0, "throughput baseline {bad}");
            assert_eq!(real.power_reduction_vs(&base), 0.0, "power baseline {bad}");
            assert_eq!(real.io_power_reduction_vs(&base), 0.0, "io baseline {bad}");
            // And a non-finite numerator never leaks NaN either.
            assert_eq!(base.degradation_vs(&real), 0.0);
            assert_eq!(base.power_reduction_vs(&real), 0.0);
        }
    }

    #[test]
    fn expected_io_energy_prices_telemetry() {
        use memnet_net::link::{state_on_active, state_on_idle};
        let model = HmcPowerModel::paper();
        let mut r = report(1.0, 100.0);
        // One link: 1 s idle at full width, 1 s off, 0.5 s waking.
        let mut mode_time = [SimDuration::ZERO; N_BW_MODES];
        mode_time[BwMode::FULL_VWL.index()] = SimDuration::from_ms(1000);
        r.links.push(LinkTelemetry {
            link: LinkId(0),
            utilization: 0.0,
            mode_time,
            off_time: SimDuration::from_ms(1000),
            waking_time: SimDuration::from_ms(500),
            wake_count: 1,
            retrans_time: [SimDuration::ZERO; N_BW_MODES],
            retrans_flits: 0,
            retransmissions: 0,
        });
        let w = model.io_watts_per_unilink();
        let expected = w + w * model.link_off_fraction + 0.5 * w;
        assert!((r.expected_io_energy(&model) - expected).abs() < 1e-9);
        // And it agrees with the power model's own snapshot pricing.
        let mut snap = vec![SimDuration::ZERO; memnet_net::link::N_ACCOUNTING_STATES];
        snap[state_on_idle(BwMode::FULL_VWL)] = SimDuration::from_ms(400);
        snap[state_on_active(BwMode::FULL_VWL)] = SimDuration::from_ms(600);
        snap[memnet_net::link::STATE_OFF] = SimDuration::from_ms(1000);
        snap[memnet_net::link::STATE_WAKING] = SimDuration::from_ms(500);
        assert!((model.link_energy(&snap).io_total() - expected).abs() < 1e-9);
    }

    #[test]
    fn expected_retrans_energy_prices_replay_residency() {
        let model = HmcPowerModel::paper();
        let mut r = report(1.0, 100.0);
        let mut retrans_time = [SimDuration::ZERO; N_BW_MODES];
        retrans_time[BwMode::FULL_VWL.index()] = SimDuration::from_ms(250);
        r.links.push(LinkTelemetry {
            link: LinkId(0),
            utilization: 0.0,
            mode_time: [SimDuration::ZERO; N_BW_MODES],
            off_time: SimDuration::ZERO,
            waking_time: SimDuration::ZERO,
            wake_count: 0,
            retrans_time,
            retrans_flits: 100,
            retransmissions: 20,
        });
        let w = model.io_watts_per_unilink();
        assert!((r.expected_retrans_io_energy(&model) - 0.25 * w).abs() < 1e-12);
        // Replay residency counts toward the total I/O expectation too.
        assert!((r.expected_io_energy(&model) - 0.25 * w).abs() < 1e-12);
        // No replays → zero expectation (the audit check is vacuous but
        // still runs on fault-free runs).
        assert_eq!(report(1.0, 100.0).expected_retrans_io_energy(&model), 0.0);
    }

    #[test]
    fn zero_hmcs_never_divide_to_non_finite() {
        // Regression guard for the per-HMC averaging paths: a degenerate
        // report with zero modules must read as zero watts, not NaN/∞
        // (energy.watts_per_hmc guards n_hmcs == 0 explicitly and the
        // category path divides by max(1)). Both must agree.
        let mut r = report(1.0, 100.0);
        r.power.n_hmcs = 0;
        assert_eq!(r.power.watts_per_hmc(), 0.0);
        assert_eq!(r.power.watts_per_hmc_by_category(), [0.0; 7]);
        // A zero-length window is the other degenerate denominator.
        r.power.window = SimDuration::ZERO;
        assert_eq!(r.power.watts(), 0.0);
        assert_eq!(r.power.watts_per_hmc(), 0.0);
        assert_eq!(r.power.watts_per_hmc_by_category(), [0.0; 7]);
    }

    #[test]
    fn per_category_watts_divide_by_hmcs() {
        let r = report(1.0, 100.0);
        // 10 J over 1 ms over 5 HMCs = 2000 W per HMC total.
        assert!((r.power.watts_per_hmc() - 2000.0).abs() < 1e-9);
        let cats = r.power.watts_per_hmc_by_category();
        assert!((cats.iter().sum::<f64>() - 2000.0).abs() < 1e-9);
        assert!((r.power.idle_io_fraction() - 0.6).abs() < 1e-12);
    }
}
