//! Topology explorer: compare the four paper topologies structurally and
//! by simulated power/performance on the same workload.
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use memnet::core::{NetworkScale, PolicyKind, SimConfig};
use memnet::net::{Topology, TopologyKind};
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn main() {
    println!("== structural comparison (17-module networks) ==");
    println!(
        "{:<13} {:>9} {:>10} {:>11}  depth histogram",
        "topology", "mean hops", "max hops", "high-radix"
    );
    for kind in TopologyKind::ALL {
        let t = Topology::build(kind, 17);
        let hist = t.depth_histogram();
        let high = t.modules().filter(|&m| t.radix(m) == memnet::net::HmcRadix::High).count();
        println!(
            "{:<13} {:>9.2} {:>10} {:>11}  {:?}",
            kind.label(),
            t.mean_depth(),
            hist.len() - 1,
            high,
            &hist[1..]
        );
    }

    println!();
    println!("== simulated on cg.D (big network, network-aware VWL+ROO, alpha=5%) ==");
    println!(
        "{:<13} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "topology", "W/HMC", "idleIO%", "linkUtil%", "lat(ns)", "hops"
    );
    for kind in TopologyKind::ALL {
        let report = SimConfig::builder()
            .workload("cg.D")
            .topology(kind)
            .scale(NetworkScale::Big)
            .policy(PolicyKind::NetworkAware)
            .mechanism(Mechanism::VwlRoo)
            .alpha(0.05)
            .eval_period(SimDuration::from_us(500))
            .build()
            .expect("valid configuration")
            .run();
        println!(
            "{:<13} {:>8.2} {:>10.1} {:>10.1} {:>10.1} {:>9.2}",
            kind.label(),
            report.power.watts_per_hmc(),
            100.0 * report.power.idle_io_fraction(),
            100.0 * report.link_utilization,
            report.mean_read_latency_ns,
            report.avg_modules_traversed,
        );
    }
}
