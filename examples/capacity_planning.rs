//! Capacity planning: for one workload, compare every topology × scale ×
//! policy combination and print the Pareto view a system architect would
//! use to pick a memory-network configuration.
//!
//! ```text
//! cargo run --release --example capacity_planning [workload]
//! ```

use memnet::core::{sweep, NetworkScale, PolicyKind, SimConfig};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "mixA".to_owned());
    println!("capacity planning for {workload}: all topologies x scales x policies\n");

    let mut configs = Vec::new();
    for topo in TopologyKind::ALL {
        for scale in [NetworkScale::Small, NetworkScale::Big] {
            for (policy, mech) in [
                (PolicyKind::FullPower, Mechanism::FullPower),
                (PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
                (PolicyKind::NetworkAware, Mechanism::VwlRoo),
            ] {
                configs.push(
                    SimConfig::builder()
                        .workload(&workload)
                        .topology(topo)
                        .scale(scale)
                        .policy(policy)
                        .mechanism(mech)
                        .alpha(0.05)
                        .eval_period(SimDuration::from_us(400))
                        .build()
                        .expect("valid configuration"),
                );
            }
        }
    }
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let reports = sweep(configs, threads);

    println!(
        "{:<13} {:<6} {:<16} {:>6} {:>9} {:>9} {:>10} {:>10}",
        "topology", "scale", "policy", "HMCs", "net W", "W/HMC", "lat(ns)", "acc/us"
    );
    for r in &reports {
        println!(
            "{:<13} {:<6} {:<16} {:>6} {:>9.2} {:>9.2} {:>10.1} {:>10.1}",
            r.topology.label(),
            r.scale,
            r.policy,
            r.power.n_hmcs,
            r.power.watts(),
            r.power.watts_per_hmc(),
            r.mean_read_latency_ns,
            r.accesses_per_us,
        );
    }

    // Identify the lowest-power configuration within 3 % of the best
    // throughput.
    let best_perf = reports.iter().map(|r| r.accesses_per_us).fold(0.0, f64::max);
    let pick = reports
        .iter()
        .filter(|r| r.accesses_per_us >= 0.97 * best_perf)
        .min_by(|a, b| a.power.watts().total_cmp(&b.power.watts()));
    if let Some(p) = pick {
        println!(
            "\nrecommended: {} / {} / {} — {:.2} W network power within 3% of peak throughput",
            p.topology.label(),
            p.scale,
            p.policy,
            p.power.watts()
        );
    }
}
