//! Multi-channel scaling: the paper's future-work question — how does
//! memory-network power behave when a processor spreads traffic over
//! several independent channels?
//!
//! ```text
//! cargo run --release --example multichannel
//! ```

use memnet::core::multichannel::run_channels;
use memnet::core::{NetworkScale, PolicyKind, SimConfig};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn main() {
    println!("mg.D over k independent channels (network-aware VWL+ROO, alpha=5%)\n");
    println!(
        "{:>9} {:>12} {:>14} {:>12} {:>10}",
        "channels", "total W", "idle I/O %", "lat (ns)", "acc/us"
    );
    for k in [1usize, 2, 4] {
        let cfg = SimConfig::builder()
            .workload("mg.D")
            .topology(TopologyKind::TernaryTree)
            .scale(NetworkScale::Small)
            .policy(PolicyKind::NetworkAware)
            .mechanism(Mechanism::VwlRoo)
            .eval_period(SimDuration::from_us(400))
            .build()
            .expect("valid configuration");
        let r = run_channels(cfg, k, 1);
        println!(
            "{:>9} {:>12.2} {:>13.1}% {:>12.1} {:>10.1}",
            k,
            r.total_watts,
            100.0 * r.idle_io_fraction,
            r.mean_read_latency_ns,
            r.total_accesses_per_us,
        );
    }
    println!();
    println!("More channels spread the same traffic thinner: total power rises");
    println!("(more always-on links) while each channel idles more — exactly the");
    println!("regime where idle-I/O management pays off most.");
}
