//! Quickstart: simulate one workload on one memory network and print the
//! paper-style power breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use memnet::core::{NetworkScale, PolicyKind, SimConfig};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn main() {
    for (label, policy, mechanism) in [
        ("full power     ", PolicyKind::FullPower, Mechanism::FullPower),
        ("unaware VWL+ROO", PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
        ("aware   VWL+ROO", PolicyKind::NetworkAware, Mechanism::VwlRoo),
    ] {
        let report = SimConfig::builder()
            .workload("mixB")
            .topology(TopologyKind::TernaryTree)
            .scale(NetworkScale::Small)
            .policy(policy)
            .mechanism(mechanism)
            .alpha(0.05)
            .eval_period(SimDuration::from_ms(1))
            .build()
            .expect("valid configuration")
            .run();

        let cats = report.power.watts_per_hmc_by_category();
        println!(
            "{label}  {:5.2} W/HMC  (idle I/O {:4.1}%, I/O {:4.1}%)  chan {:4.1}%  link {:4.1}%  \
             lat {:6.1} ns  {:7.1} acc/us  hops {:.2}  viol {}",
            report.power.watts_per_hmc(),
            100.0 * report.power.idle_io_fraction(),
            100.0 * report.power.io_fraction(),
            100.0 * report.channel_utilization,
            100.0 * report.link_utilization,
            report.mean_read_latency_ns,
            report.accesses_per_us,
            report.avg_modules_traversed,
            report.violations,
        );
        println!(
            "    breakdown: idleIO {:.2}  activeIO {:.2}  logicLk {:.2}  logicDyn {:.2}  dramLk {:.2}  dramDyn {:.2}",
            cats[0], cats[1], cats[2], cats[3], cats[4], cats[5]
        );
    }
}
