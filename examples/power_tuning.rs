//! Power tuning: sweep the allowable-slowdown factor α and chart the
//! power/performance trade-off an operator would tune.
//!
//! ```text
//! cargo run --release --example power_tuning
//! ```

use memnet::core::{run_pair, NetworkScale, PolicyKind, SimConfig};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn main() {
    println!("alpha sweep: mg.D, big star network, network-aware VWL+ROO");
    println!(
        "{:>7} {:>12} {:>14} {:>14} {:>11}",
        "alpha", "power(W)", "power saved", "perf loss", "violations"
    );
    for alpha in [0.01, 0.025, 0.05, 0.10, 0.20, 0.30] {
        let cfg = SimConfig::builder()
            .workload("mg.D")
            .topology(TopologyKind::Star)
            .scale(NetworkScale::Big)
            .policy(PolicyKind::NetworkAware)
            .mechanism(Mechanism::VwlRoo)
            .alpha(alpha)
            .eval_period(SimDuration::from_us(800))
            .build()
            .expect("valid configuration");
        let (managed, baseline) = run_pair(cfg);
        println!(
            "{:>6.1}% {:>12.2} {:>13.1}% {:>13.2}% {:>11}",
            100.0 * alpha,
            managed.power.watts(),
            100.0 * managed.power_reduction_vs(&baseline),
            100.0 * managed.degradation_vs(&baseline),
            managed.violations,
        );
    }
    println!();
    println!("Reading the chart: power savings should grow with alpha while");
    println!("performance loss stays near (and tracks) the alpha bound.");
}
