//! Trace audit: capture a packet trace and walk one read transaction
//! through the network, showing where its latency went.
//!
//! ```text
//! cargo run --release --example trace_audit
//! ```

use memnet::core::{PolicyKind, SimConfig, TracePoint};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn main() {
    let report = SimConfig::builder()
        .workload("sp.D")
        .topology(TopologyKind::DaisyChain)
        .policy(PolicyKind::NetworkUnaware)
        .mechanism(Mechanism::Roo)
        .eval_period(SimDuration::from_us(300))
        .trace_limit(50_000)
        .build()
        .expect("valid configuration")
        .run();

    println!("captured {} trace events", report.trace.len());

    // Find a read that retired, preferring one that went deep.
    let retired: Vec<u64> =
        report.trace.iter().filter(|e| e.point == TracePoint::Retire).map(|e| e.packet).collect();
    let Some(&victim) = retired.iter().max() else {
        println!("no retired reads captured");
        return;
    };

    println!("\ntimeline of transaction #{victim}:");
    let mut prev: Option<memnet_simcore::SimTime> = None;
    for e in report.trace.iter().filter(|e| e.packet == victim) {
        let delta = prev.map(|p| format!("(+{:.2} ns)", (e.time - p).as_ns())).unwrap_or_default();
        println!("  {:>12.3} ns  {:<24} {delta}", e.time.as_ns(), format!("{:?}", e.point));
        prev = Some(e.time);
    }

    // Aggregate: where do reads spend time on average?
    let mut inject_to_vault = 0.0f64;
    let mut vault_time = 0.0f64;
    let mut vault_to_retire = 0.0f64;
    let mut counted = 0u32;
    for &pkt in &retired {
        let events: Vec<_> = report.trace.iter().filter(|e| e.packet == pkt).collect();
        let find = |p: fn(&TracePoint) -> bool| events.iter().find(|e| p(&e.point));
        let (Some(i), Some(ve), Some(vd), Some(r)) = (
            find(|p| matches!(p, TracePoint::Inject)),
            find(|p| matches!(p, TracePoint::VaultEnqueue(_))),
            find(|p| matches!(p, TracePoint::VaultDone(_))),
            find(|p| matches!(p, TracePoint::Retire)),
        ) else {
            continue;
        };
        inject_to_vault += (ve.time - i.time).as_ns();
        vault_time += (vd.time - ve.time).as_ns();
        vault_to_retire += (r.time - vd.time).as_ns();
        counted += 1;
    }
    if counted > 0 {
        let n = f64::from(counted);
        println!("\naverage read latency decomposition over {counted} transactions:");
        println!("  request path (inject → vault): {:7.2} ns", inject_to_vault / n);
        println!("  DRAM access                  : {:7.2} ns", vault_time / n);
        println!("  response path (vault → CPU)  : {:7.2} ns", vault_to_retire / n);
    }
}
