//! Fault storm: how the paper's power-management policies hold up when the
//! links misbehave. Runs the unmanaged baseline and the network-aware
//! VWL+ROO policy at three per-flit CRC error rates and prints power,
//! performance and the retry/retransmission bill for each.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```

use memnet::core::{NetworkScale, PolicyKind, SimConfig};
use memnet::faults::FaultConfig;
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn main() {
    println!(
        "{:<16} {:>9} {:>8} {:>9} {:>8} {:>9} {:>12}",
        "policy", "BER", "W/HMC", "acc/us", "retries", "re-flits", "retrans(uJ)"
    );
    for (label, policy, mechanism) in [
        ("full power", PolicyKind::FullPower, Mechanism::FullPower),
        ("aware VWL+ROO", PolicyKind::NetworkAware, Mechanism::VwlRoo),
    ] {
        for ber in [0.0, 1e-5, 1e-3] {
            let report = SimConfig::builder()
                .workload("mixB")
                .topology(TopologyKind::TernaryTree)
                .scale(NetworkScale::Small)
                .policy(policy)
                .mechanism(mechanism)
                .alpha(0.05)
                .eval_period(SimDuration::from_us(300))
                .faults(FaultConfig::with_flit_error_rate(ber))
                .build()
                .expect("valid configuration")
                .run();

            println!(
                "{label:<16} {ber:>9.0e} {:>8.2} {:>9.1} {:>8} {:>9} {:>12.3}",
                report.power.watts_per_hmc(),
                report.accesses_per_us,
                report.faults.retries,
                report.faults.retransmitted_flits,
                1e6 * report.faults.retransmission_energy,
            );
        }
    }
}
