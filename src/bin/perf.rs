//! Workspace-root alias so `cargo run --release --bin perf` works without
//! `-p memnet-perf` — see [`memnet_perf::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    memnet_perf::cli::run()
}
