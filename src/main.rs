//! `memnet` command-line interface: run one memory-network simulation and
//! print a report.
//!
//! ```text
//! memnet [--workload NAME] [--topology daisychain|ternary|star|ddrx]
//!        [--scale small|big] [--policy fp|unaware|aware|static]
//!        [--mechanism fp|vwl|roo|vwl+roo|dvfs|dvfs+roo]
//!        [--alpha PCT] [--eval-us N] [--seed N] [--channels K]
//!        [--faults SPEC] [--trace-csv FILE] [--obs] [--trace FILE]
//!        [--trace-every N] [--trace-max N] [--json] [--compare]
//! memnet trace FILE [--csv OUT]
//! ```
//!
//! `--faults` takes a scenario spec like `ber=1e-6,burst=mild,fail=3`
//! (see `memnet::faults::FaultConfig::parse`); when omitted, the
//! `MEMNET_FAULTS` environment variable supplies the scenario.
//!
//! `--obs` retains per-epoch time-series samples in the report; `--trace`
//! additionally streams schema-versioned JSONL events to a file
//! (decimated by `--trace-every`, capped at `--trace-max`). The
//! `MEMNET_TRACE`, `MEMNET_TRACE_EVERY` and `MEMNET_TRACE_MAX`
//! environment variables supply defaults for the three flags. The
//! `memnet trace` subcommand validates a trace file and prints its
//! per-link residency table; `--csv` also writes the epoch time series
//! as CSV for plotting.
//!
//! `memnet record FILE` dumps the configured workload's request stream
//! (covering the evaluation period) to a schema-versioned JSONL trace;
//! `memnet replay FILE` drives the engine from such a trace instead of
//! the synthetic generator. A replay with the trace's own seed (the
//! default when `--seed` is omitted) is bit-identical to the recorded
//! run.
//!
//! `--energy-backend analytical|idd` selects how the engine prices
//! residencies and activity (default from `MEMNET_ENERGY_BACKEND`, else
//! the analytical model); the choice never changes simulated behavior,
//! only the energy accounting. `memnet calibrate MEASUREMENTS.csv` fits
//! the IDD mode table to measured watts and emits a calibration JSON;
//! `memnet diff-models` runs one configuration through both backends and
//! exits non-zero if any mode-table watt, energy category or total
//! diverges beyond `--threshold` percent.
//!
//! `memnet serve` runs the manifest-driven batch simulation daemon;
//! `memnet submit MANIFEST` sends a memnet-manifest document to it and
//! prints the standardized result payload; `memnet run-manifest MANIFEST`
//! executes the same document offline (byte-identical result);
//! `memnet shutdown` asks a daemon to drain and exit. See
//! `memnet::serve` for the manifest schema and the exit-code contract.
//!
//! `memnet sweep [--shard i/n]` computes one deterministic shard of the
//! figure matrix and dumps it as memnet-sweep JSONL; `memnet merge`
//! recombines per-shard files into output byte-identical to the
//! unsharded run (`--check` validates coverage without writing). See
//! `memnet::bench::shard` for the partition and file format.

use std::process::ExitCode;
use std::sync::Arc;

use memnet::core::multichannel::run_channels;
use memnet::core::{report_text, Engine, NetworkScale, PolicyKind, SimConfig, SimConfigBuilder};
use memnet::faults::FaultConfig;
use memnet::net::TopologyKind;
use memnet::obs::{summary, ObsConfig};
use memnet::policy::Mechanism;
use memnet::power::{calib, EnergyBackend, EnergyBackendKind, HmcPowerModel, IddModel};
use memnet::workload::RequestTrace;
use memnet_simcore::{memnet_log, memnet_warn, SimDuration};

struct Args {
    workload: String,
    topology: TopologyKind,
    scale: NetworkScale,
    policy: PolicyKind,
    mechanism: Mechanism,
    alpha: f64,
    eval_us: u64,
    /// None = unset on the command line: the default is 0xC0FFEE for live
    /// runs but the recorded seed for replays.
    seed: Option<u64>,
    channels: usize,
    faults: FaultConfig,
    trace_csv: Option<String>,
    obs: ObsConfig,
    energy_backend: EnergyBackendKind,
    json: bool,
    compare: bool,
}

fn usage() -> &'static str {
    "usage: memnet [--workload NAME] [--topology daisychain|ternary|star|ddrx]\n\
     \x20             [--scale small|big] [--policy fp|unaware|aware|static]\n\
     \x20             [--mechanism fp|vwl|roo|vwl+roo|dvfs|dvfs+roo] [--alpha PCT]\n\
     \x20             [--eval-us N] [--seed N] [--channels K] [--faults SPEC]\n\
     \x20             [--trace-csv FILE] [--obs] [--trace FILE] [--trace-every N]\n\
     \x20             [--trace-max N] [--json] [--compare] [--list-workloads]\n\
     \x20             [--energy-backend analytical|idd]\n\
     \x20      memnet trace FILE [--csv OUT]\n\
     \x20      memnet record FILE [run flags]\n\
     \x20      memnet replay FILE [run flags]\n\
     \x20      memnet calibrate FILE [--out FILE]\n\
     \x20      memnet diff-models [run flags] [--threshold PCT] [--calibration FILE]\n\
     \x20      memnet serve [--addr A] [--workers N] [--cache-dir DIR] [--no-cache]\n\
     \x20      memnet submit MANIFEST [--addr A] [--out FILE]\n\
     \x20      memnet run-manifest MANIFEST [--out FILE]\n\
     \x20      memnet shutdown [--addr A]\n\
     \x20      memnet sweep [--shard I/N] [--figures LIST] [--seeds LIST] [--obs]\n\
     \x20                   [--out FILE]\n\
     \x20      memnet merge [--check] [--out FILE] SHARD_FILE...\n\
     \x20 --faults SPEC: fault scenario, e.g. ber=1e-6,burst=mild,degrade=2:4,fail=3\n\
     \x20                (defaults to the MEMNET_FAULTS environment variable)\n\
     \x20 --obs:         keep per-epoch time-series samples in the report\n\
     \x20 --trace FILE:  stream JSONL events to FILE (default MEMNET_TRACE;\n\
     \x20                decimation/cap default MEMNET_TRACE_EVERY/_MAX)\n\
     \x20 trace FILE:    validate a JSONL trace and print its residency table;\n\
     \x20                --csv OUT also writes the epoch time series as CSV\n\
     \x20 record FILE:   dump the configured workload's request stream (covering\n\
     \x20                --eval-us) to a schema-versioned JSONL request trace\n\
     \x20 replay FILE:   drive the engine from a recorded request trace; seed\n\
     \x20                defaults to the trace's (bit-identical rerun)\n\
     \x20 --energy-backend: energy pricing model (default MEMNET_ENERGY_BACKEND,\n\
     \x20                else analytical); never changes simulated behavior\n\
     \x20 calibrate FILE: least-squares-fit the IDD mode table to a measurement\n\
     \x20                CSV (timestamp_s,mode,watts) and emit calibration JSON\n\
     \x20 diff-models:   run one configuration through both energy backends and\n\
     \x20                exit non-zero if any quantity diverges beyond\n\
     \x20                --threshold percent (default 5); --calibration FILE\n\
     \x20                prices the IDD side with a calibrated model\n\
     \x20 serve:         run the manifest batch daemon (addr defaults to\n\
     \x20                MEMNET_SERVE_ADDR, else 127.0.0.1:9377; results cached\n\
     \x20                in --cache-dir, default target/memnet-cache)\n\
     \x20 submit FILE:   send a memnet-manifest v1 JSON to a daemon; events on\n\
     \x20                stderr, result payload on stdout (or --out); exits by\n\
     \x20                the result contract (0 pass, 2 assert-fail, 3 limit,\n\
     \x20                4 rejected, 5 cancelled)\n\
     \x20 run-manifest:  execute a manifest offline with the same result payload\n\
     \x20                and exit contract as submit, byte-identical report\n\
     \x20 shutdown:      ask a daemon to drain its queue and exit\n\
     \x20 sweep:         compute one deterministic shard of the figure matrix and\n\
     \x20                dump memnet-sweep JSONL (figures default to the full\n\
     \x20                registry; eval/seed/cache from MEMNET_EVAL_US,\n\
     \x20                MEMNET_SEED, MEMNET_CACHE_DIR / MEMNET_NO_CACHE;\n\
     \x20                --seeds 2,3 adds replica seeds per cell, default\n\
     \x20                MEMNET_SEEDS, simulated lockstep)\n\
     \x20 merge:         recombine per-shard sweep files into output\n\
     \x20                byte-identical to the unsharded run (exit 0 merged,\n\
     \x20                1 I/O error, 2 mismatched or incomplete shards);\n\
     \x20                --check validates coverage without writing output"
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        workload: "mixB".into(),
        topology: TopologyKind::TernaryTree,
        scale: NetworkScale::Small,
        policy: PolicyKind::FullPower,
        mechanism: Mechanism::FullPower,
        alpha: 5.0,
        eval_us: 1_000,
        seed: None,
        channels: 1,
        faults: FaultConfig::from_env(),
        trace_csv: None,
        obs: ObsConfig::from_env(),
        energy_backend: EnergyBackendKind::from_env(),
        json: false,
        compare: false,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workload" | "-w" => args.workload = value("--workload")?,
            "--topology" | "-t" => {
                let v = value("--topology")?;
                args.topology =
                    TopologyKind::parse(&v).ok_or_else(|| format!("unknown topology {v:?}"))?;
            }
            "--scale" | "-s" => {
                let v = value("--scale")?;
                args.scale =
                    NetworkScale::parse(&v).ok_or_else(|| format!("unknown scale {v:?}"))?;
            }
            "--policy" | "-p" => {
                let v = value("--policy")?;
                args.policy =
                    PolicyKind::parse(&v).ok_or_else(|| format!("unknown policy {v:?}"))?;
            }
            "--mechanism" | "-m" => {
                let v = value("--mechanism")?;
                args.mechanism =
                    Mechanism::parse(&v).ok_or_else(|| format!("unknown mechanism {v:?}"))?;
            }
            "--alpha" | "-a" => {
                args.alpha = value("--alpha")?.parse().map_err(|e| format!("bad alpha: {e}"))?
            }
            "--eval-us" => {
                args.eval_us =
                    value("--eval-us")?.parse().map_err(|e| format!("bad eval-us: {e}"))?
            }
            "--seed" => {
                args.seed = Some(value("--seed")?.parse().map_err(|e| format!("bad seed: {e}"))?)
            }
            "--channels" => {
                args.channels =
                    value("--channels")?.parse().map_err(|e| format!("bad channels: {e}"))?
            }
            "--faults" => {
                args.faults = FaultConfig::parse(&value("--faults")?)
                    .map_err(|e| format!("bad fault scenario: {e}"))?
            }
            "--trace-csv" => args.trace_csv = Some(value("--trace-csv")?),
            "--obs" => args.obs.enabled = true,
            "--trace" => args.obs.trace_path = Some(value("--trace")?),
            "--trace-every" => {
                args.obs.trace_every =
                    value("--trace-every")?.parse().map_err(|e| format!("bad trace-every: {e}"))?
            }
            "--trace-max" => {
                args.obs.trace_max =
                    value("--trace-max")?.parse().map_err(|e| format!("bad trace-max: {e}"))?
            }
            "--energy-backend" => {
                let v = value("--energy-backend")?;
                args.energy_backend = EnergyBackendKind::parse(&v)
                    .ok_or_else(|| format!("unknown energy backend {v:?} (analytical|idd)"))?
            }
            "--json" => args.json = true,
            "--compare" => args.compare = true,
            "--list-workloads" => {
                for w in memnet::workload::catalog::all() {
                    println!(
                        "{:<6} {:>3} GB  chan util {:>4.0}%  {:?}",
                        w.name,
                        w.footprint_gb,
                        100.0 * w.channel_utilization,
                        w.class
                    );
                }
                for s in memnet::workload::stress::all() {
                    println!(
                        "{:<6} {:>3} GB  chan util {:>4.0}%  Stress({:?})",
                        s.base.name,
                        s.base.footprint_gb,
                        100.0 * s.base.channel_utilization,
                        s.pattern
                    );
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn build(args: &Args, replay: Option<Arc<RequestTrace>>) -> Result<SimConfig, String> {
    // Live runs default to the builder's seed; replays default to the
    // recorded seed so the rerun is bit-identical.
    let seed = args.seed.unwrap_or(match &replay {
        Some(trace) => trace.seed,
        None => 0xC0FFEE,
    });
    let mut builder: SimConfigBuilder = SimConfig::builder()
        .workload(&args.workload)
        .topology(args.topology)
        .scale(args.scale)
        .policy(args.policy)
        .mechanism(args.mechanism)
        .alpha(args.alpha / 100.0)
        .eval_period(SimDuration::from_us(args.eval_us))
        .seed(seed)
        .faults(args.faults.clone())
        .obs(args.obs.clone())
        .energy_backend(args.energy_backend)
        .trace_limit(if args.trace_csv.is_some() { 1_000_000 } else { 0 });
    if let Some(trace) = replay {
        builder = builder.replay(trace);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Splits a subcommand's argument vector into its positional FILE and the
/// remaining run flags.
fn take_file(cmd: &str, rest: Vec<String>) -> Result<(String, Vec<String>), String> {
    let mut file = None;
    let mut flags = Vec::new();
    for arg in rest {
        if file.is_none() && !arg.starts_with('-') {
            file = Some(arg);
        } else {
            flags.push(arg);
        }
    }
    file.map(|f| (f, flags)).ok_or_else(|| format!("{cmd} needs a FILE\n{}", usage()))
}

/// `memnet record FILE [run flags]`: dump the configured workload's
/// request stream to a JSONL request trace covering the evaluation period.
fn record_command(rest: Vec<String>) -> Result<(), String> {
    let (file, flags) = take_file("record", rest)?;
    let args = parse_args(flags)?;
    if args.channels > 1 {
        return Err("record is single-channel (channels reseed per channel)".to_owned());
    }
    let cfg = build(&args, None)?;
    // ~56 B/record: the cap bounds the file near 500 MB even if asked to
    // record a very long evaluation period.
    let trace = cfg.record_trace(10_000_000)?;
    std::fs::write(&file, trace.to_jsonl()).map_err(|e| format!("writing {file}: {e}"))?;
    memnet_log!(
        "recorded {} request(s) of {} (digest {}) to {file}",
        trace.len(),
        trace.workload,
        trace.digest_hex()
    );
    Ok(())
}

/// `memnet replay FILE [run flags]`: drive the engine from a recorded
/// request trace instead of the synthetic generator.
fn replay_command(rest: Vec<String>) -> Result<ExitCode, String> {
    let (file, flags) = take_file("replay", rest)?;
    let args = parse_args(flags)?;
    if args.channels > 1 {
        return Err("replay is single-channel (channels reseed per channel)".to_owned());
    }
    let text = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let trace =
        RequestTrace::parse_jsonl(&text).map_err(|e| format!("invalid trace {file}: {e}"))?;
    memnet_log!(
        "replaying {} request(s) of {} (digest {}) from {file}",
        trace.len(),
        trace.workload,
        trace.digest_hex()
    );
    let cfg = build(&args, Some(Arc::new(trace)))?;
    Ok(run_and_report(&args, cfg))
}

/// `memnet calibrate FILE [--out FILE]`: least-squares-fit the IDD mode
/// table's link currents to a measurement CSV and emit the calibrated
/// model as JSON (to `--out`, else stdout).
fn calibrate_command(rest: Vec<String>) -> Result<(), String> {
    let mut file: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().ok_or("--out requires a value")?),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_owned()),
            other => return Err(format!("unknown calibrate argument {other:?}\n{}", usage())),
        }
    }
    let Some(file) = file else {
        return Err(format!("calibrate needs a measurement CSV\n{}", usage()));
    };
    let text = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let rows = calib::parse_csv(&text).map_err(|e| format!("invalid measurements {file}: {e}"))?;
    let (fitted, report) = calib::fit(&IddModel::hmc_gen2(), &rows)?;
    memnet_log!(
        "calibrated on {} row(s) ({} on-mode, {} off, {} waking); rms residual {:.3e} W",
        report.rows(),
        report.on_rows,
        report.off_rows,
        report.wake_rows,
        report.rms_watts
    );
    let json = serde::json::to_string(&fitted);
    match out {
        Some(path) => {
            std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            memnet_log!("wrote calibration JSON to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// `memnet diff-models [run flags] [--threshold PCT] [--calibration FILE]`:
/// run one configuration through the analytical and IDD energy backends
/// and report every mode-table watt and energy-category divergence,
/// exiting non-zero if any exceeds the threshold.
fn diff_models_command(rest: Vec<String>) -> Result<ExitCode, String> {
    let mut threshold_pct = 5.0f64;
    let mut calibration: Option<String> = None;
    let mut flags = Vec::new();
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold_pct = it
                    .next()
                    .ok_or("--threshold requires a value")?
                    .parse()
                    .map_err(|e| format!("bad threshold: {e}"))?
            }
            "--calibration" => {
                calibration = Some(it.next().ok_or("--calibration requires a value")?)
            }
            _ => flags.push(arg),
        }
    }
    if !(threshold_pct.is_finite() && threshold_pct >= 0.0) {
        return Err(format!("bad threshold: {threshold_pct} (want a percentage >= 0)"));
    }
    let args = parse_args(flags)?;
    if args.channels > 1 {
        return Err("diff-models is single-channel".to_owned());
    }
    let threshold = threshold_pct / 100.0;
    let idd = match &calibration {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            serde::json::from_str::<IddModel>(&text)
                .map_err(|e| format!("invalid calibration {path}: {e}"))?
        }
        None => IddModel::hmc_gen2(),
    };
    let analytical = HmcPowerModel::paper();
    let mut flagged = 0usize;

    println!("Mode-table watts per unidirectional link");
    let (table, n) = report_text::model_diff_table(
        analytical.name(),
        idd.name(),
        &report_text::model_diff_watts_rows(&analytical, &idd),
        threshold,
    );
    print!("{table}");
    flagged += n;

    let mut cfg = build(&args, None)?;
    cfg.energy_backend = EnergyBackendKind::Analytical;
    let ref_report = cfg.clone().run();
    let cand_report = Engine::new(cfg).with_backend(Box::new(idd.clone())).run();
    println!(
        "\nRun energy over {} / {} / {} ({} us)",
        ref_report.workload, ref_report.policy, ref_report.mechanism, args.eval_us
    );
    let (table, n) = report_text::model_diff_table(
        analytical.name(),
        idd.name(),
        &report_text::model_diff_energy_rows(&ref_report, &cand_report),
        threshold,
    );
    print!("{table}");
    flagged += n;

    if flagged > 0 {
        memnet_warn!(
            "[diff-models] {flagged} quantity(ies) diverge beyond {threshold_pct}% between \
             the two energy models"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Default daemon address: `--addr`, else `MEMNET_SERVE_ADDR`, else the
/// memnet registered port. The env lookup lives here at the CLI edge —
/// the serve crate itself never reads the environment.
fn serve_addr(flag: Option<String>) -> String {
    flag.or_else(|| std::env::var("MEMNET_SERVE_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:9377".to_owned())
}

/// `memnet serve [--addr A] [--workers N] [--cache-dir DIR] [--no-cache]`:
/// run the manifest batch daemon until SIGINT/SIGTERM or a `shutdown`
/// request drains it.
fn serve_command(rest: Vec<String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut cfg = memnet::serve::ServerConfig::default();
    let mut cache_dir = Some(std::path::PathBuf::from("target/memnet-cache"));
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--workers" => {
                cfg.workers =
                    value("--workers")?.parse().map_err(|e| format!("bad workers: {e}"))?
            }
            "--cache-dir" => cache_dir = Some(value("--cache-dir")?.into()),
            "--no-cache" => cache_dir = None,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown serve argument {other:?}\n{}", usage())),
        }
    }
    cfg.addr = serve_addr(addr);
    cfg.cache_dir = cache_dir;
    memnet::serve::signal::install();
    let server =
        memnet::serve::Server::bind(cfg.clone()).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    memnet_log!(
        "memnet serve listening on {addr} ({} worker(s), cache {})",
        cfg.workers.max(1),
        cfg.cache_dir.as_deref().map_or("off".into(), |d| d.display().to_string())
    );
    let stats = server.run().map_err(|e| format!("serve: {e}"))?;
    memnet_log!(
        "memnet serve drained: {} submitted, {} simulated, {} coalesced, {} cache hit(s), \
         {} rejected, {} cancelled",
        stats.submitted,
        stats.simulated,
        stats.coalesced,
        stats.cache_hits,
        stats.rejected,
        stats.cancelled
    );
    Ok(())
}

/// Reads a manifest file and validates it locally, so schema errors come
/// back with real line numbers into the user's file. Returns the raw
/// text too (the wire form is its parsed JSON value).
fn load_manifest(path: &str) -> Result<(String, memnet::serve::Manifest), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let manifest = memnet::serve::Manifest::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((text, manifest))
}

/// Writes a result payload line to `--out` or stdout and converts its
/// embedded exit code into the process exit.
fn emit_result(json_line: &str, out: Option<&str>, exit_code: i64) -> Result<ExitCode, String> {
    match out {
        Some(path) => {
            let mut body = json_line.to_owned();
            body.push('\n');
            std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        }
        None => println!("{json_line}"),
    }
    Ok(ExitCode::from(exit_code.clamp(0, 255) as u8))
}

/// `memnet run-manifest MANIFEST [--out FILE]`: execute one manifest
/// offline — same payload and exit contract as a daemon submission.
fn run_manifest_command(rest: Vec<String>) -> Result<ExitCode, String> {
    let mut file: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().ok_or("--out requires a value")?),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_owned()),
            other => return Err(format!("unknown run-manifest argument {other:?}\n{}", usage())),
        }
    }
    let Some(file) = file else {
        return Err(format!("run-manifest needs a MANIFEST file\n{}", usage()));
    };
    let (_, manifest) = match load_manifest(&file) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("error: {e}");
            return Ok(ExitCode::from(memnet::serve::EXIT_REJECTED as u8));
        }
    };
    if manifest.sweep.is_some() {
        // A sweep manifest runs every shard sequentially and merges; the
        // merged text goes to the spec's own `out` path, while --out (or
        // stdout) receives the memnet-sweep-result payload.
        let (payload, _text) = match memnet::serve::run_sweep_manifest(&manifest) {
            Ok(done) => done,
            Err(e) => {
                eprintln!("error: {file}: {e}");
                return Ok(ExitCode::from(memnet::serve::EXIT_REJECTED as u8));
            }
        };
        memnet_log!(
            "{file}: {} ({}) — {} cell(s) across {} shard(s), {} simulated",
            payload.exit,
            payload.stop,
            payload.cells,
            payload.shards,
            payload.simulated
        );
        return emit_result(
            &serde::json::to_string(&payload),
            out.as_deref(),
            payload.exit_code.into(),
        );
    }
    let payload = match memnet::serve::run_manifest(&manifest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return Ok(ExitCode::from(memnet::serve::EXIT_REJECTED as u8));
        }
    };
    memnet_log!(
        "{file}: {} ({}) after {} event(s)",
        payload.exit,
        payload.stop,
        payload.report.events_processed
    );
    emit_result(&serde::json::to_string(&payload), out.as_deref(), payload.exit_code.into())
}

/// `memnet submit MANIFEST [--addr A] [--out FILE]`: send a manifest to a
/// running daemon, narrate its lifecycle events on stderr, and print the
/// result payload — byte-identical to `run-manifest` when the daemon
/// simulates it fresh.
fn submit_command(rest: Vec<String>) -> Result<ExitCode, String> {
    use std::io::{BufRead, BufReader, Write};
    let mut file: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr requires a value")?),
            "--out" => out = Some(it.next().ok_or("--out requires a value")?),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_owned()),
            other => return Err(format!("unknown submit argument {other:?}\n{}", usage())),
        }
    }
    let Some(file) = file else {
        return Err(format!("submit needs a MANIFEST file\n{}", usage()));
    };
    // Validate locally first: schema errors get real line numbers into the
    // user's file instead of a position in the re-serialized wire form.
    let (text, _) = match load_manifest(&file) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("error: {e}");
            return Ok(ExitCode::from(memnet::serve::EXIT_REJECTED as u8));
        }
    };
    let doc = serde::json::parse(&text).expect("validated manifest reparses");

    let addr = serve_addr(addr);
    let mut stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| format!("connecting to {addr}: {e} (is `memnet serve` running?)"))?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let line = format!("{{\"op\":\"submit\",\"manifest\":{}}}\n", serde::json::to_string(&doc));
    stream.write_all(line.as_bytes()).map_err(|e| format!("sending to {addr}: {e}"))?;

    for line in reader.lines() {
        let line = line.map_err(|e| format!("reading from {addr}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let event = serde::json::parse(&line)
            .map_err(|e| format!("bad event from {addr}: {} in {line:?}", e.0))?;
        let kind = event.get("event").ok().and_then(|v| v.as_str().ok()).unwrap_or("?").to_owned();
        match kind.as_str() {
            "rejected" => {
                let msg =
                    event.get("error").ok().and_then(|v| v.as_str().ok()).unwrap_or("rejected");
                let path =
                    event.get("path").ok().and_then(|v| v.as_str().ok()).unwrap_or("manifest");
                eprintln!("error: {file}: {path}: {msg}");
                return Ok(ExitCode::from(memnet::serve::EXIT_REJECTED as u8));
            }
            "queued" => memnet_log!("{file}: queued{}", queue_note(&event)),
            "started" => memnet_log!("{file}: started"),
            "progress" => {
                // Sweep jobs report shard completions; run jobs report
                // simulation events.
                if let Ok(done) = event.get("shards_done").and_then(|v| v.num::<u64>()) {
                    let total =
                        event.get("shards").ok().and_then(|v| v.num::<u64>().ok()).unwrap_or(0);
                    memnet_log!("{file}: progress, {done}/{total} shard(s) done");
                } else {
                    let events =
                        event.get("events").ok().and_then(|v| v.num::<u64>().ok()).unwrap_or(0);
                    memnet_log!("{file}: progress, {events} event(s) processed");
                }
            }
            "done" | "failed" | "cancelled" => {
                let result = match event.get("result") {
                    Ok(result) => result,
                    Err(_) => {
                        // A sweep that failed server-side (merge or
                        // out-file error) carries an error, no payload.
                        let msg = event
                            .get("error")
                            .ok()
                            .and_then(|v| v.as_str().ok())
                            .unwrap_or("job failed without a result payload");
                        eprintln!("error: {file}: {msg}");
                        return Ok(ExitCode::from(memnet::serve::EXIT_ERROR as u8));
                    }
                };
                let exit_code = result
                    .get("exit_code")
                    .ok()
                    .and_then(|v| v.num::<i64>().ok())
                    .unwrap_or(memnet::serve::EXIT_ERROR.into());
                let exit = result.get("exit").ok().and_then(|v| v.as_str().ok()).unwrap_or("?");
                let stop = result.get("stop").ok().and_then(|v| v.as_str().ok()).unwrap_or("?");
                memnet_log!("{file}: {exit} ({stop})");
                if exit_code != i64::from(memnet::serve::EXIT_PASS) {
                    for verdict in assertion_failures(result) {
                        memnet_warn!("{file}: assertion failed: {verdict}");
                    }
                }
                return emit_result(&serde::json::to_string(result), out.as_deref(), exit_code);
            }
            "shutting-down" => {
                return Err(format!("{addr} is shutting down and refused the submission"))
            }
            "error" => {
                let msg = event.get("error").ok().and_then(|v| v.as_str().ok()).unwrap_or("?");
                return Err(format!("{addr}: {msg}"));
            }
            _ => {}
        }
    }
    Err(format!("{addr} closed the connection before returning a result"))
}

/// Renders a queued event's provenance flags for the narration line.
fn queue_note(event: &serde::json::Value) -> &'static str {
    let flag = |key: &str| matches!(event.get(key), Ok(serde::json::Value::Bool(true)));
    if flag("cached") {
        " (served from the result cache)"
    } else if flag("coalesced") {
        " (coalesced onto an identical in-flight job)"
    } else {
        ""
    }
}

/// Lists the failed assertions out of a result payload value.
fn assertion_failures(result: &serde::json::Value) -> Vec<String> {
    let Ok(serde::json::Value::Arr(verdicts)) = result.get("assertions") else {
        return Vec::new();
    };
    verdicts
        .iter()
        .filter(|v| matches!(v.get("ok"), Ok(serde::json::Value::Bool(false))))
        .map(|v| {
            let field =
                |key: &str| v.get(key).ok().and_then(|x| x.as_str().ok()).unwrap_or("?").to_owned();
            format!("{} wanted {}, got {}", field("assertion"), field("want"), field("actual"))
        })
        .collect()
}

/// `memnet shutdown [--addr A]`: ask a daemon to drain and exit.
fn shutdown_command(rest: Vec<String>) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let mut addr: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr requires a value")?),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown shutdown argument {other:?}\n{}", usage())),
        }
    }
    let addr = serve_addr(addr);
    let mut stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| format!("connecting to {addr}: {e} (is `memnet serve` running?)"))?;
    stream.write_all(b"{\"op\":\"shutdown\"}\n").map_err(|e| format!("sending to {addr}: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("reading from {addr}: {e}"))?;
    if !reply.contains("shutting-down") {
        return Err(format!("unexpected reply from {addr}: {}", reply.trim()));
    }
    memnet_log!("{addr} is draining its queue and shutting down");
    Ok(())
}

/// `memnet sweep [--shard I/N] [--figures LIST] [--obs] [--out FILE]`:
/// compute one deterministic shard of the figure matrix and dump its
/// results as memnet-sweep JSONL (to `--out`, else stdout). With the
/// default `--shard 0/1` this is the unsharded whole — the document
/// `memnet merge` output is byte-compared against.
fn sweep_command(rest: Vec<String>) -> Result<ExitCode, String> {
    use memnet::bench::{figures, shard, Matrix, Settings};
    let mut shard_arg = shard::Shard::full();
    let mut figure_list: Option<Vec<String>> = None;
    let mut out: Option<String> = None;
    let mut obs = false;
    let mut seeds: Option<Vec<u64>> = None;
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--shard" => shard_arg = shard::Shard::parse(&value("--shard")?)?,
            "--figures" => {
                figure_list = Some(
                    value("--figures")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--out" => out = Some(value("--out")?),
            "--obs" => obs = true,
            "--seeds" => {
                let raw = value("--seeds")?;
                seeds = Some(
                    memnet::bench::parse_seed_list(&raw)
                        .map_err(|e| format!("invalid --seeds {raw:?}: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown sweep argument {other:?}\n{}", usage())),
        }
    }
    let mut settings = Settings::from_env();
    settings.obs = obs;
    if let Some(seeds) = seeds {
        settings.seeds = seeds;
    }
    let figure_list = figure_list
        .unwrap_or_else(|| figures::SWEEP_FIGURES.iter().map(|s| s.to_string()).collect());
    let plan = shard::SweepPlan::new(&figure_list, &settings)?;
    let mut matrix = Matrix::new();
    let (text, stats) = shard::run_shard(&plan, shard_arg, &settings, &mut matrix)?;
    match &out {
        Some(path) => std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?,
        None => print!("{text}"),
    }
    memnet_log!(
        "[sweep {shard_arg}] {} of {} cell(s): {} memoized, {} cache hit(s), {} simulated{}",
        stats.requested,
        plan.len(),
        stats.memoized,
        stats.cache_hits,
        stats.simulated,
        out.as_deref().map(|p| format!(" -> {p}")).unwrap_or_default()
    );
    Ok(ExitCode::SUCCESS)
}

/// `memnet merge [--check] [--out FILE] SHARD_FILE...`: recombine
/// per-shard sweep files into output byte-identical to an unsharded
/// `memnet sweep` run.
///
/// Exit contract: `0` merged cleanly (or, with `--check`, coverage
/// validated without writing output); `1` I/O or usage error; `2`
/// validation failure — mismatched headers, foreign cells, or missing
/// shards/cells, with the offender named on stderr.
fn merge_command(rest: Vec<String>) -> Result<ExitCode, String> {
    use memnet::bench::shard;
    let mut check = false;
    let mut out: Option<String> = None;
    let mut files = Vec::new();
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out = Some(it.next().ok_or("--out requires a value")?),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with('-') => files.push(other.to_owned()),
            other => return Err(format!("unknown merge argument {other:?}\n{}", usage())),
        }
    }
    if files.is_empty() {
        return Err(format!("merge needs at least one shard file\n{}", usage()));
    }
    let mut parsed = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        match shard::parse_sweep_file(path, &text) {
            Ok(f) => parsed.push(f),
            Err(e) => {
                eprintln!("error: {e}");
                return Ok(ExitCode::from(2));
            }
        }
    }
    let merged = match shard::merge(&parsed) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    // The aggregate counters sum the shards' footers, so `requested`
    // equals the cell total an unsharded run reports.
    memnet_log!(
        "[merge] {} shard(s), {} cell(s); across shards: {} requested, {} memoized, \
         {} cache hit(s), {} simulated",
        merged.shards,
        merged.cells,
        merged.stats.requested,
        merged.stats.memoized,
        merged.stats.cache_hits,
        merged.stats.simulated
    );
    if check {
        memnet_log!("[merge] check ok: coverage complete; no output written");
        return Ok(ExitCode::SUCCESS);
    }
    match &out {
        Some(path) => {
            std::fs::write(path, &merged.text).map_err(|e| format!("writing {path}: {e}"))?;
            memnet_log!("[merge] wrote {path}");
        }
        None => print!("{}", merged.text),
    }
    Ok(ExitCode::SUCCESS)
}

/// `memnet trace FILE [--csv OUT]`: validate a JSONL trace and print its
/// summary and per-link residency table.
fn trace_command(rest: Vec<String>) -> ExitCode {
    let mut file: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => match it.next() {
                Some(out) => csv = Some(out),
                None => {
                    eprintln!("error: --csv requires a value\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_owned()),
            other => {
                eprintln!("error: unknown trace argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: trace needs a FILE\n{}", usage());
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s = match summary::parse_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: invalid trace {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{file}: schema v{}, {} / {} / {}, {} links",
        s.version, s.workload, s.policy, s.mechanism, s.n_links
    );
    println!(
        "{} epoch sample(s); {} event(s) seen, {} written{}",
        s.samples.len(),
        s.events_seen,
        s.events_written,
        if s.truncated { " (truncated)" } else { "" }
    );
    let counted: Vec<String> =
        s.events_by_kind.iter().filter(|(_, n)| *n > 0).map(|(k, n)| format!("{k}={n}")).collect();
    if !counted.is_empty() {
        println!("events: {}", counted.join(" "));
    }
    if !s.samples.is_empty() {
        print!("{}", summary::residency_table(&s.samples));
    }
    if let Some(out) = csv {
        if let Err(e) = std::fs::write(&out, summary::epoch_csv(&s.samples)) {
            eprintln!("error writing {out}: {e}");
            return ExitCode::FAILURE;
        }
        memnet_log!("wrote {} epoch row(s) to {out}", s.samples.len());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    match raw.peek().map(String::as_str) {
        Some("trace") => return trace_command(raw.skip(1).collect()),
        Some("record") => {
            return match record_command(raw.skip(1).collect()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("replay") => {
            return match replay_command(raw.skip(1).collect()) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("calibrate") => {
            return match calibrate_command(raw.skip(1).collect()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("diff-models") => {
            return match diff_models_command(raw.skip(1).collect()) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("serve") => {
            return match serve_command(raw.skip(1).collect()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("submit") => {
            return match submit_command(raw.skip(1).collect()) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("run-manifest") => {
            return match run_manifest_command(raw.skip(1).collect()) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("shutdown") => {
            return match shutdown_command(raw.skip(1).collect()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("sweep") => {
            return match sweep_command(raw.skip(1).collect()) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("merge") => {
            return match merge_command(raw.skip(1).collect()) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {}
    }
    let args = match parse_args(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match build(&args, None) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    run_and_report(&args, cfg)
}

/// Runs one configuration (single, multichannel or `--compare`) and prints
/// its report. Shared by the main path and `memnet replay`.
fn run_and_report(args: &Args, cfg: SimConfig) -> ExitCode {
    if args.channels > 1 {
        let mut cfg = cfg;
        if cfg.obs.is_active() {
            // Channels clone the config: a shared trace file would be
            // clobbered k times and per-channel rings never aggregate.
            memnet_warn!("[obs] --obs/--trace apply to single-channel runs only; ignoring");
            cfg.obs = ObsConfig::off();
        }
        let r = run_channels(cfg, args.channels, 1);
        if args.json {
            println!("{}", serde_json_lite(&r.total_watts, r.total_accesses_per_us));
        } else {
            println!(
                "{} channels: {:.2} W total, idle I/O {:.1}%, {:.1} acc/us, {:.1} ns mean read",
                args.channels,
                r.total_watts,
                100.0 * r.idle_io_fraction,
                r.total_accesses_per_us,
                r.mean_read_latency_ns
            );
        }
        return ExitCode::SUCCESS;
    }

    if args.compare {
        let mut cfg = cfg;
        if cfg.obs.is_active() {
            memnet_warn!("[obs] --obs/--trace apply to single runs, not --compare; ignoring");
            cfg.obs = ObsConfig::off();
        }
        let mut reports = Vec::new();
        let mut fp = cfg.clone();
        fp.policy = PolicyKind::FullPower;
        fp.mechanism = Mechanism::FullPower;
        reports.push(fp.run());
        if args.policy != PolicyKind::FullPower {
            reports.push(cfg.run());
        } else {
            for (p, m) in [
                (PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
                (PolicyKind::NetworkAware, Mechanism::VwlRoo),
            ] {
                let mut c = cfg.clone();
                c.policy = p;
                c.mechanism = m;
                reports.push(c.run());
            }
        }
        print!("{}", report_text::comparison_table(&reports));
        return ExitCode::SUCCESS;
    }

    let report = cfg.run();
    if let Some(path) = &args.trace_csv {
        let mut trace = memnet::core::Trace::with_limit(report.trace.len().max(1));
        for e in &report.trace {
            trace.record(*e);
        }
        if let Err(e) = std::fs::write(path, trace.to_csv()) {
            memnet_warn!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        memnet_log!("wrote {} trace events to {path}", report.trace.len());
    }
    if args.json {
        match serde_json_report(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{}", report_text::power_breakdown(&report));
        if !args.faults.is_none() {
            print!("{}", report_text::fault_section(&report));
        }
        print!("{}", report_text::obs_section(&report));
        println!("{}", report_text::summary_line(&report));
    }
    ExitCode::SUCCESS
}

/// Minimal JSON for the multichannel summary (avoids a serde_json
/// dependency for two numbers).
fn serde_json_lite(watts: &f64, acc: f64) -> String {
    format!("{{\"total_watts\":{watts},\"accesses_per_us\":{acc}}}")
}

/// Hand-rolled JSON for the scalar fields of a report.
fn serde_json_report(r: &memnet::core::RunReport) -> Result<String, String> {
    Ok(format!(
        "{{\"workload\":\"{}\",\"topology\":\"{}\",\"scale\":\"{}\",\"policy\":\"{}\",\
         \"mechanism\":\"{}\",\"alpha\":{},\"watts\":{:.6},\"watts_per_hmc\":{:.6},\
         \"idle_io_fraction\":{:.6},\"io_fraction\":{:.6},\"channel_utilization\":{:.6},\
         \"link_utilization\":{:.6},\"avg_modules_traversed\":{:.4},\"completed_reads\":{},\
         \"mean_read_latency_ns\":{:.3},\"accesses_per_us\":{:.3},\"violations\":{},\
         \"faults\":{{\"retries\":{},\"retransmitted_flits\":{},\"retransmission_energy\":{:.9},\
         \"wake_timeouts\":{},\"aborted_accesses\":{},\"rerouted_modules\":{},\
         \"unreachable_modules\":{}}}}}",
        r.workload,
        r.topology.label(),
        r.scale,
        r.policy,
        r.mechanism,
        r.alpha,
        r.power.watts(),
        r.power.watts_per_hmc(),
        r.power.idle_io_fraction(),
        r.power.io_fraction(),
        r.channel_utilization,
        r.link_utilization,
        r.avg_modules_traversed,
        r.completed_reads,
        r.mean_read_latency_ns,
        r.accesses_per_us,
        r.violations,
        r.faults.retries,
        r.faults.retransmitted_flits,
        r.faults.retransmission_energy,
        r.faults.wake_timeouts,
        r.faults.aborted_accesses,
        r.faults.rerouted_modules,
        r.faults.unreachable_modules,
    ))
}
