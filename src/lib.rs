#![warn(missing_docs)]

//! # memnet — memory-network power simulation and management
//!
//! A from-scratch reproduction of *"Understanding and Optimizing Power
//! Consumption in Memory Networks"* (HPCA 2017): a discrete-event simulator
//! for HMC-style memory networks together with the paper's idle-I/O power
//! management policies (network-unaware and network-aware / ISP) and the
//! circuit-level mechanisms they drive (rapid on/off, variable-width links,
//! link DVFS).
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! - [`simcore`] — discrete-event kernel (time, events, RNG, stats)
//! - [`dram`] — HMC vault/bank DRAM timing model
//! - [`net`] — packets, topologies, routing, link model
//! - [`faults`] — fault injection: CRC errors, degraded lanes, hard
//!   failures and the link-retry/route-around resilience model
//! - [`obs`] — time-series observability: per-epoch metric sampling,
//!   JSONL event traces and the trace summarizer
//! - [`power`] — the HMC power model and energy accounting
//! - [`policy`] — power-control mechanisms and management policies
//! - [`workload`] — the 14 paper workloads as synthetic generators
//! - [`core`] — the simulator engine, configuration and reports
//! - [`bench`] — the figure/experiment matrix, its persistent result
//!   cache and the sweep shard partitioner
//! - [`serve`] — the manifest-driven batch simulation server
//!
//! # Quickstart
//!
//! ```
//! use memnet::core::{NetworkScale, PolicyKind, SimConfig};
//! use memnet::net::TopologyKind;
//! use memnet::policy::Mechanism;
//! use memnet_simcore::SimDuration;
//!
//! # fn main() {
//! let report = SimConfig::builder()
//!     .workload("mixB")
//!     .topology(TopologyKind::TernaryTree)
//!     .scale(NetworkScale::Small)
//!     .policy(PolicyKind::NetworkAware)
//!     .mechanism(Mechanism::VwlRoo)
//!     .eval_period(SimDuration::from_us(300))
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! println!("avg power per HMC: {:.2} W", report.power.watts_per_hmc());
//! # }
//! ```

pub use memnet_bench as bench;
pub use memnet_core as core;
pub use memnet_dram as dram;
pub use memnet_faults as faults;
pub use memnet_net as net;
pub use memnet_obs as obs;
pub use memnet_policy as policy;
pub use memnet_power as power;
pub use memnet_serve as serve;
pub use memnet_simcore as simcore;
pub use memnet_workload as workload;
