//! End-to-end tests of the observability subsystem against the real
//! engine: a traced run must emit a schema-valid JSONL stream whose epoch
//! samples tile the evaluation window and whose per-epoch energies sum to
//! the aggregate report energy; decimation and ring bounds must hold.

use memnet::core::{PolicyKind, SimConfig};
use memnet::obs::{summary, ObsConfig};
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn traced_config(obs: ObsConfig, eval_us: u64) -> SimConfig {
    SimConfig::builder()
        .workload("mixD")
        .policy(PolicyKind::NetworkAware)
        .mechanism(Mechanism::VwlRoo)
        .eval_period(SimDuration::from_us(eval_us))
        .seed(9)
        .obs(obs)
        .build()
        .unwrap()
}

fn unique_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("memnet-obs-trace-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn traced_run_emits_schema_valid_jsonl_with_contiguous_epochs() {
    let path = unique_path("valid");
    let mut obs = ObsConfig::off();
    obs.enabled = true;
    obs.trace_path = Some(path.to_string_lossy().into_owned());
    let report = traced_config(obs, 350).run();

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    // parse_jsonl validates: header schema/version, known event kinds with
    // their required fields, monotone timestamps, contiguous epochs,
    // exactly one footer with consistent counts.
    let s = summary::parse_jsonl(&text).expect("schema-valid trace");
    assert_eq!(s.workload, "mixD");
    assert_eq!(s.policy, "network-aware");

    // The samples tile [0, eval) without gaps; the tail sample covers the
    // partial epoch when eval is not a multiple of the epoch length.
    assert!(!s.samples.is_empty());
    assert_eq!(s.samples[0].start_ps, 0);
    assert_eq!(s.samples.last().unwrap().end_ps, SimDuration::from_us(350).as_ps());

    // The in-report ring and the trace saw the same samples.
    let obs_section = report.obs.expect("obs section retained");
    assert_eq!(obs_section.epochs.len(), s.samples.len());
    assert_eq!(obs_section.events_seen, s.events_seen);
    assert!(s.event_count("wake") > 0, "a managed run must wake links");
    assert!(s.event_count("isp") > 0, "network-aware runs ISP every epoch");
}

#[test]
fn per_epoch_energy_sums_to_the_aggregate_report_energy() {
    let mut obs = ObsConfig::off();
    obs.enabled = true;
    obs.ring_capacity = 1 << 16; // retain every epoch
    let report = traced_config(obs, 350).run();

    let samples = &report.obs.as_ref().expect("obs section").epochs;
    assert!(report.obs.as_ref().unwrap().samples_dropped == 0);
    let report_cats = report.power.energy.categories();
    for (i, _) in memnet::obs::ENERGY_CATEGORIES.iter().enumerate() {
        let summed: f64 = samples.iter().map(|s| s.energy_j[i]).sum();
        let reference = report_cats[i];
        let tol = 1e-9 * reference.abs().max(1e-12);
        assert!(
            (summed - reference).abs() <= tol,
            "category {}: epoch sum {summed:e} J vs report {reference:e} J",
            memnet::obs::ENERGY_CATEGORIES[i]
        );
    }
}

#[test]
fn decimation_and_cap_bound_the_event_stream() {
    let path = unique_path("decim");
    let mut obs = ObsConfig::off();
    obs.trace_path = Some(path.to_string_lossy().into_owned());
    obs.trace_every = 7;
    let report = traced_config(obs.clone(), 300).run();
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let s = summary::parse_jsonl(&text).expect("valid trace");
    assert!(s.events_seen > s.events_written, "every=7 must drop events");
    assert_eq!(s.events_written, s.events_seen.div_ceil(7));
    assert!(!s.truncated);
    // trace_path alone activates the recorder; enabled=false only skips
    // the in-report ring.
    assert!(report.obs.is_some());

    let mut capped = ObsConfig::off();
    capped.trace_path = Some(path.to_string_lossy().into_owned());
    capped.trace_max = 10;
    traced_config(capped, 300).run();
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let s = summary::parse_jsonl(&text).expect("capped trace still valid");
    assert_eq!(s.events_written, 10);
    assert!(s.truncated);
}

#[test]
fn ring_capacity_bounds_retained_samples() {
    let mut obs = ObsConfig::off();
    obs.enabled = true;
    obs.ring_capacity = 2;
    let report = traced_config(obs, 350).run();
    let section = report.obs.expect("obs section");
    assert_eq!(section.epochs.len(), 2);
    assert!(section.samples_dropped > 0);
    // The ring keeps the most recent epochs.
    assert_eq!(section.epochs.last().unwrap().end_ps, SimDuration::from_us(350).as_ps());
}
