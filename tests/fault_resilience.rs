//! End-to-end tests for the fault-injection and link-resilience subsystem:
//! CRC/retry with audited retransmission energy, route-around under hard
//! link failures, degraded-lane clamping, ROO wake timeouts, and the
//! determinism contract for fault sweeps.

use memnet::core::{sweep, NetworkScale, PolicyKind, SimConfig};
use memnet::faults::FaultConfig;
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet::simcore::AuditLevel;
use memnet_simcore::SimDuration;

fn base(workload: &str, topo: TopologyKind) -> memnet::core::SimConfigBuilder {
    SimConfig::builder()
        .workload(workload)
        .topology(topo)
        .scale(NetworkScale::Small)
        .eval_period(SimDuration::from_us(100))
        .seed(11)
        .audit(AuditLevel::Full)
}

fn faulty(workload: &str, topo: TopologyKind, spec: &str) -> memnet::core::SimConfigBuilder {
    base(workload, topo).faults(FaultConfig::parse(spec).expect("test fault specs are valid"))
}

/// The ISSUE acceptance sweep: BER x topology x policy must serialize
/// byte-identically between `threads = 1` and `threads = 4`, so fault
/// randomness can never leak across parallel workers.
#[test]
fn fault_sweep_is_deterministic_across_thread_counts() {
    let configs = || {
        let mut v = Vec::new();
        for topo in [TopologyKind::DaisyChain, TopologyKind::TernaryTree] {
            for (policy, mech) in [
                (PolicyKind::FullPower, Mechanism::FullPower),
                (PolicyKind::NetworkAware, Mechanism::Roo),
            ] {
                for ber in [0.0, 1e-12, 1e-9, 1e-3] {
                    v.push(
                        base("mixD", topo)
                            .policy(policy)
                            .mechanism(mech)
                            .eval_period(SimDuration::from_us(50))
                            .faults(FaultConfig::with_flit_error_rate(ber))
                            .build()
                            .unwrap(),
                    );
                }
            }
        }
        v
    };
    let serial = sweep(configs(), 1);
    let parallel = sweep(configs(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            serde::json::to_string(s),
            serde::json::to_string(p),
            "fault sweep differs between threads=1 and threads=4 for {}/{}",
            s.topology.label(),
            s.mechanism,
        );
    }
}

/// A noisy link must show retries, replayed flits and nonzero
/// retransmission energy — all absent from the error-free sibling — and
/// the double-entry retransmission-energy audit must stay clean.
#[test]
fn crc_errors_cause_retries_and_audited_retransmission_energy() {
    let noisy = faulty("mixD", TopologyKind::DaisyChain, "ber=1e-4").build().unwrap().run();
    assert!(noisy.audit.is_clean(), "audit violations: {:?}", noisy.audit.violations);
    assert!(noisy.faults.retries > 0, "1e-4 per-flit BER produced no retries");
    assert!(
        noisy.faults.retransmitted_flits >= noisy.faults.retries,
        "every retry replays at least one flit"
    );
    assert!(
        noisy.faults.retransmission_energy > 0.0,
        "retries must be charged retransmission I/O energy"
    );
    // Retries delay packets but never lose them: work still completes.
    assert!(noisy.completed_reads > 0);

    let clean = base("mixD", TopologyKind::DaisyChain).build().unwrap().run();
    assert_eq!(clean.faults.retries, 0);
    assert_eq!(clean.faults.retransmission_energy, 0.0);
    assert!(
        noisy.mean_read_latency_ns > clean.mean_read_latency_ns,
        "retry turnarounds must show up as added latency ({} vs {} ns)",
        noisy.mean_read_latency_ns,
        clean.mean_read_latency_ns
    );
}

/// Failing an interior edge of the ternary tree must route the subtree
/// over a spare port: the module stays reachable, nothing is aborted.
#[test]
fn ternary_tree_routes_around_a_failed_edge() {
    let r = faulty("cg.D", TopologyKind::TernaryTree, "fail=4").build().unwrap().run();
    assert!(r.audit.is_clean(), "audit violations: {:?}", r.audit.violations);
    assert_eq!(r.faults.rerouted_modules, 1, "module 4 must re-attach via a spare port");
    assert_eq!(r.faults.unreachable_modules, 0);
    assert_eq!(r.faults.aborted_accesses, 0);
    assert!(r.completed_reads > 0);
}

/// A daisy chain has no spare ports: cutting module 1's edge strands the
/// whole tail. Accesses to stranded modules abort, and the access
/// conservation audit must balance injected = completed + outstanding
/// + aborted.
#[test]
fn daisy_chain_failure_strands_the_tail_and_aborts_accesses() {
    let r = faulty("cg.D", TopologyKind::DaisyChain, "fail=1").build().unwrap().run();
    assert!(r.audit.is_clean(), "audit violations: {:?}", r.audit.violations);
    assert_eq!(r.faults.rerouted_modules, 0, "a chain has no spare ports");
    assert!(
        r.faults.unreachable_modules >= 7,
        "cutting edge 1 of an 8-module chain strands modules 1..=7, got {}",
        r.faults.unreachable_modules
    );
    assert!(r.faults.aborted_accesses > 0, "traffic to the stranded tail must abort");
    assert!(r.completed_reads > 0, "module 0 keeps serving");
}

/// Degraded lanes clamp the link's bandwidth mode at the physical layer:
/// a full-power network with every lane but one stuck must burn less I/O
/// energy than the healthy network (narrow links idle cheaper) while the
/// audit still balances.
#[test]
fn degraded_lanes_reduce_io_energy_under_full_power() {
    let healthy = base("mixD", TopologyKind::DaisyChain).build().unwrap().run();
    let degraded =
        faulty("mixD", TopologyKind::DaisyChain, "degrade=0:1+1:1+2:1+3:1").build().unwrap().run();
    assert!(degraded.audit.is_clean(), "audit violations: {:?}", degraded.audit.violations);
    assert!(
        degraded.power.energy.io_total() < healthy.power.energy.io_total(),
        "one surviving lane must idle cheaper than sixteen ({} vs {} J)",
        degraded.power.energy.io_total(),
        healthy.power.energy.io_total()
    );
    assert_eq!(degraded.faults.retries, 0, "degradation alone corrupts nothing");
}

/// ROO wakes that miss their training window pay the wake latency twice;
/// with a high timeout rate the counter must fire and the run stay clean.
#[test]
fn wake_timeouts_fire_under_roo() {
    let r = faulty("mixD", TopologyKind::TernaryTree, "wake_timeout=0.5")
        .policy(PolicyKind::NetworkAware)
        .mechanism(Mechanism::Roo)
        .build()
        .unwrap()
        .run();
    assert!(r.audit.is_clean(), "audit violations: {:?}", r.audit.violations);
    assert!(r.faults.wake_timeouts > 0, "half of all wakes should time out");
    assert!(r.completed_reads > 0);
}

/// At the retry limit a packet is delivered anyway (machine-check
/// semantics): even an atrociously noisy link makes forward progress.
#[test]
fn retry_limit_forces_delivery_on_hopeless_links() {
    let r = faulty("mixD", TopologyKind::DaisyChain, "ber=0.2,retry_limit=2")
        .eval_period(SimDuration::from_us(50))
        .build()
        .unwrap()
        .run();
    assert!(r.audit.is_clean(), "audit violations: {:?}", r.audit.violations);
    assert!(r.faults.retries > 0);
    assert!(r.completed_reads > 0, "forced delivery must keep the network live");
}

/// Every policy/mechanism pair must run clean under the strictest audit
/// level with a compound fault scenario active — retransmission energy,
/// access conservation and mode-legality checks all included.
#[test]
fn full_audit_is_clean_across_policies_under_compound_faults() {
    let cases = [
        (PolicyKind::FullPower, Mechanism::FullPower),
        (PolicyKind::NetworkUnaware, Mechanism::Roo),
        (PolicyKind::NetworkUnaware, Mechanism::Vwl),
        (PolicyKind::NetworkAware, Mechanism::VwlRoo),
        (PolicyKind::NetworkAware, Mechanism::Dvfs),
        (PolicyKind::NetworkAware, Mechanism::DvfsRoo),
    ];
    let spec = "ber=1e-5,burst=severe,degrade=2:4,wake_timeout=0.05";
    for (policy, mech) in cases {
        let r = faulty("mixD", TopologyKind::TernaryTree, spec)
            .policy(policy)
            .mechanism(mech)
            .build()
            .unwrap()
            .run();
        assert!(
            r.audit.is_clean(),
            "{policy:?}/{mech:?} violated invariants under faults: {:?}",
            r.audit.violations
        );
        assert!(r.audit.checks_run > 0, "{policy:?}/{mech:?} ran zero checks");
    }
}

/// Config validation rejects fault indices that don't exist on the
/// configured network, naming the bad index.
#[test]
fn config_rejects_out_of_range_fault_indices() {
    // mixD small builds a 2-module network: module 3 / link 7 don't exist.
    let fail = base("mixD", TopologyKind::DaisyChain)
        .faults(FaultConfig::parse("fail=3").unwrap())
        .build();
    assert!(fail.is_err(), "failing a nonexistent module must not build");
    let degrade = base("mixD", TopologyKind::DaisyChain)
        .faults(FaultConfig::parse("degrade=40:4").unwrap())
        .build();
    assert!(degrade.is_err(), "degrading a nonexistent link must not build");
}
