//! Runtime invariant-audit tests: every policy/mechanism combination must
//! run clean under the strictest audit level, and a deliberately injected
//! energy-accounting bug must be caught by the audit layer.

use memnet::core::{NetworkScale, PolicyKind, SimConfig};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet::power::HmcPowerModel;
use memnet::simcore::audit::approx_eq_rel;
use memnet::simcore::{AuditLevel, Auditor};
use memnet_simcore::SimDuration;

fn audited(workload: &str) -> memnet::core::SimConfigBuilder {
    SimConfig::builder()
        .workload(workload)
        .eval_period(SimDuration::from_us(100))
        .seed(11)
        .audit(AuditLevel::Full)
}

#[test]
fn full_audit_is_clean_across_policies_and_mechanisms() {
    let cases = [
        (PolicyKind::FullPower, Mechanism::FullPower),
        (PolicyKind::NetworkUnaware, Mechanism::Roo),
        (PolicyKind::NetworkUnaware, Mechanism::Vwl),
        (PolicyKind::NetworkAware, Mechanism::VwlRoo),
        (PolicyKind::NetworkAware, Mechanism::Dvfs),
        (PolicyKind::NetworkAware, Mechanism::DvfsRoo),
    ];
    for (policy, mech) in cases {
        let r = audited("mixD")
            .topology(TopologyKind::TernaryTree)
            .scale(NetworkScale::Small)
            .policy(policy)
            .mechanism(mech)
            .build()
            .unwrap()
            .run();
        assert_eq!(r.audit.level, AuditLevel::Full, "{policy:?}/{mech:?}");
        assert!(r.audit.checks_run > 0, "{policy:?}/{mech:?} ran zero checks");
        assert!(
            r.audit.is_clean(),
            "{policy:?}/{mech:?} violated invariants: {:?}",
            r.audit.violations
        );
    }
}

#[test]
fn audit_off_runs_no_checks() {
    let r = audited("mixD").audit(AuditLevel::Off).build().unwrap().run();
    assert_eq!(r.audit.checks_run, 0);
    assert!(r.audit.violations.is_empty());
}

#[test]
fn cheap_audit_runs_fewer_checks_than_full() {
    let cheap = audited("mixB").audit(AuditLevel::Cheap).build().unwrap().run();
    let full = audited("mixB").audit(AuditLevel::Full).build().unwrap().run();
    assert!(cheap.audit.checks_run > 0);
    assert!(
        full.audit.checks_run > cheap.audit.checks_run,
        "Full ({}) must strictly add checks over Cheap ({})",
        full.audit.checks_run,
        cheap.audit.checks_run
    );
    assert!(cheap.audit.is_clean() && full.audit.is_clean());
}

/// The acceptance test for the audit layer itself: inject an
/// energy-accounting bug into an otherwise healthy report and show the
/// double-entry I/O energy check catches it, while the unmutated report
/// passes the identical check.
#[test]
fn injected_energy_bug_is_caught_by_the_audit() {
    let model = HmcPowerModel::paper();
    let healthy = audited("mixD")
        .policy(PolicyKind::NetworkAware)
        .mechanism(Mechanism::VwlRoo)
        .build()
        .unwrap()
        .run();
    assert!(healthy.audit.is_clean());

    // The same conservation check the engine runs, applied out-of-band so
    // we can feed it a corrupted report without panicking the engine.
    let io_conservation = |r: &memnet::core::RunReport| {
        let mut auditor = Auditor::with_panic(AuditLevel::Cheap, false);
        let expected = r.expected_io_energy(&model);
        let actual = r.power.energy.io_total();
        auditor.check(
            AuditLevel::Cheap,
            "io-energy-conservation",
            approx_eq_rel(expected, actual, 1e-9),
            || format!("telemetry prices I/O at {expected} J but accounting recorded {actual} J"),
        );
        auditor.finish()
    };

    assert!(io_conservation(&healthy).is_clean(), "unmutated report must pass");

    // Simulate an accounting bug: active I/O energy overstated by 10 %.
    let mut buggy = healthy.clone();
    buggy.power.energy.active_io *= 1.1;
    let report = io_conservation(&buggy);
    assert!(!report.is_clean(), "a 10 % active-I/O error must be flagged");
    assert_eq!(report.violations[0].check, "io-energy-conservation");
    assert!(report.violations[0].detail.contains("J"));

    // And an unphysical (negative-energy) mutation trips the physicality
    // check the engine applies to every finished run.
    let mut negative = healthy.clone();
    negative.power.energy.dram_dyn = -1.0;
    assert!(!negative.power.energy.is_physical());
    assert!(healthy.power.energy.is_physical());
}

#[test]
fn audit_results_survive_serialization() {
    use serde::Deserialize;
    let r = audited("mixD").build().unwrap().run();
    let json = serde::json::to_string(&r);
    let back = memnet::core::RunReport::deserialize(&serde::json::parse(&json).unwrap()).unwrap();
    assert_eq!(back.audit.level, r.audit.level);
    assert_eq!(back.audit.checks_run, r.audit.checks_run);
    assert_eq!(back.audit.violations.len(), r.audit.violations.len());
}
