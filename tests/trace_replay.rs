//! Record→replay round-trip fidelity: a replayed trace must drive the
//! engine to a byte-identical `RunReport` vs the live generator run it
//! was recorded from — the property that makes traces a trustworthy
//! substitute for the synthetic workloads.

use std::sync::Arc;

use memnet::core::{PolicyKind, SimConfig, SimConfigBuilder};
use memnet::faults::FaultConfig;
use memnet::obs::ObsConfig;
use memnet::policy::Mechanism;
use memnet::workload::RequestTrace;
use memnet_simcore::SimDuration;

const SEED: u64 = 11;

fn base(workload: &str) -> SimConfigBuilder {
    SimConfig::builder()
        .workload(workload)
        .eval_period(SimDuration::from_us(50))
        .seed(SEED)
        .policy(PolicyKind::NetworkAware)
        .mechanism(Mechanism::VwlRoo)
}

/// Records `workload`'s request stream with the harness settings.
fn record(workload: &str) -> Arc<RequestTrace> {
    let trace = base(workload).build().unwrap().record_trace(1_000_000).unwrap();
    Arc::new(trace)
}

#[test]
fn replay_is_bit_identical_with_faults_and_obs_enabled() {
    // The nastiest single-run comparison: soft link errors (retries and
    // retransmission energy) plus per-epoch time-series retention, both
    // of which would expose any RNG or scheduling divergence between the
    // generator path and the replay path.
    let mut obs = ObsConfig::off();
    obs.enabled = true;
    let faults = FaultConfig::parse("ber=1e-6").unwrap();

    let live = base("mixD").faults(faults.clone()).obs(obs.clone()).build().unwrap().run();

    // Round-trip through the JSONL serialization on the way, so the disk
    // format itself is part of what's being proven faithful.
    let jsonl = record("mixD").to_jsonl();
    let parsed = RequestTrace::parse_jsonl(&jsonl).expect("serialized trace parses back");
    let replayed =
        base("mixD").replay(Arc::new(parsed)).faults(faults).obs(obs).build().unwrap().run();

    assert_eq!(
        serde::json::to_string(&live),
        serde::json::to_string(&replayed),
        "replayed report differs from the live run"
    );
}

#[test]
fn replay_is_thread_count_invariant() {
    // Replay configs swept at 1 vs 4 threads must agree with each other
    // and with the live runs, across several policies at once.
    let cases = [
        (PolicyKind::FullPower, Mechanism::FullPower),
        (PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
        (PolicyKind::NetworkAware, Mechanism::VwlRoo),
    ];
    let trace = record("mixB");
    let live: Vec<SimConfig> =
        cases.iter().map(|&(p, m)| base("mixB").policy(p).mechanism(m).build().unwrap()).collect();
    let replay: Vec<SimConfig> = cases
        .iter()
        .map(|&(p, m)| base("mixB").policy(p).mechanism(m).replay(trace.clone()).build().unwrap())
        .collect();
    let live = memnet::core::sweep(live, 1);
    let replay_serial = memnet::core::sweep(replay.clone(), 1);
    let replay_parallel = memnet::core::sweep(replay, 4);
    for ((l, s), p) in live.iter().zip(&replay_serial).zip(&replay_parallel) {
        assert_eq!(
            serde::json::to_string(l),
            serde::json::to_string(s),
            "serial replay diverged from live ({}/{})",
            l.policy,
            l.mechanism
        );
        assert_eq!(
            serde::json::to_string(s),
            serde::json::to_string(p),
            "replay diverged between threads=1 and threads=4 ({}/{})",
            l.policy,
            l.mechanism
        );
    }
}

#[test]
fn stress_workloads_record_and_replay_bit_identically() {
    // The trace layer is source-agnostic: adversarial generators round-
    // trip exactly like catalog ones.
    let trace = record("adv.wakestorm");
    assert_eq!(trace.workload, "adv.wakestorm");
    let live = base("adv.wakestorm").build().unwrap().run();
    let replayed = base("adv.wakestorm").replay(trace).build().unwrap().run();
    assert_eq!(serde::json::to_string(&live), serde::json::to_string(&replayed));
}

#[test]
fn truncated_trace_exhausts_cleanly() {
    // A trace that runs out mid-run must starve the front-end quietly:
    // the run completes, audits stay green, and no more requests inject
    // than the trace held.
    let full = record("mixD");
    let half: Vec<_> = full.records()[..full.len() / 2].to_vec();
    let n = half.len() as u64;
    let truncated = Arc::new(RequestTrace::new("mixD".to_owned(), SEED, half));
    let r = base("mixD")
        .replay(truncated)
        .audit(memnet_simcore::AuditLevel::Full)
        .build()
        .unwrap()
        .run();
    assert!(r.injected_accesses <= n, "{} injected from a {n}-request trace", r.injected_accesses);
    assert!(r.injected_accesses > 0, "truncated replay injected nothing");
    assert_eq!(r.completed_reads + r.retired_writes, r.injected_accesses, "traffic drained");
}

#[test]
fn replay_digest_guards_against_content_drift() {
    // Same workload name + seed but different content must produce a
    // different digest — the field the bench cache folds into `src=`.
    let a = record("mixD");
    let mut records = a.records().to_vec();
    records[0].line_addr ^= 1;
    let b = RequestTrace::new("mixD".to_owned(), SEED, records);
    assert_ne!(a.digest_hex(), b.digest_hex());
}
