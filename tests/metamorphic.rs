//! Metamorphic tests: relations that must hold between *pairs* of runs
//! (or between a run and an analytically transformed sibling), which
//! catch bugs no single-run assertion can see.

use memnet::core::{NetworkScale, PolicyKind, SimConfig};
use memnet::net::link::{
    state_on_active, state_on_idle, N_ACCOUNTING_STATES, STATE_OFF, STATE_WAKING,
};
use memnet::net::mech::{BwMode, VwlWidth};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet::power::HmcPowerModel;
use memnet_simcore::SimDuration;
use proptest::prelude::*;

fn base(workload: &str) -> memnet::core::SimConfigBuilder {
    SimConfig::builder()
        .workload(workload)
        .topology(TopologyKind::TernaryTree)
        .scale(NetworkScale::Small)
        .seed(5)
}

/// Doubling the evaluation window of a steady-state workload must roughly
/// double the energy: energy is extensive in time. A large deviation means
/// energy is being accrued per-event-count or lost at window boundaries.
#[test]
fn doubling_the_window_doubles_the_energy() {
    for (policy, mech) in [
        (PolicyKind::FullPower, Mechanism::FullPower),
        (PolicyKind::NetworkAware, Mechanism::VwlRoo),
    ] {
        let run = |us: u64| {
            base("mixD")
                .policy(policy)
                .mechanism(mech)
                .eval_period(SimDuration::from_us(us))
                .build()
                .unwrap()
                .run()
        };
        let short = run(100);
        let long = run(200);
        let ratio = long.power.energy.total() / short.power.energy.total();
        assert!(
            (1.6..=2.4).contains(&ratio),
            "{policy:?}/{mech:?}: 2x window changed energy {ratio:.3}x"
        );
        // Completed work is extensive too (looser: warm-up is amortized).
        let work = long.completed_reads as f64 / short.completed_reads as f64;
        assert!(
            (1.4..=2.6).contains(&work),
            "{policy:?}/{mech:?}: 2x window gave {work:.3}x reads"
        );
    }
}

/// A network-aware policy driving the full-power "mechanism" has no modes
/// to switch to, so its physics must be identical to the unmanaged
/// baseline: idle management disabled == no power management.
#[test]
fn fullpower_mechanism_reproduces_unmanaged_baseline() {
    let run = |policy| {
        base("mixB")
            .policy(policy)
            .mechanism(Mechanism::FullPower)
            .eval_period(SimDuration::from_us(150))
            .build()
            .unwrap()
            .run()
    };
    let managed = run(PolicyKind::NetworkAware);
    let baseline = run(PolicyKind::FullPower);
    assert_eq!(managed.completed_reads, baseline.completed_reads);
    assert_eq!(managed.retired_writes, baseline.retired_writes);
    assert_eq!(managed.injected_accesses, baseline.injected_accesses);
    assert_eq!(
        managed.mean_read_latency_ns.to_bits(),
        baseline.mean_read_latency_ns.to_bits(),
        "latencies must be bit-identical"
    );
    assert_eq!(
        managed.power.energy.total().to_bits(),
        baseline.power.energy.total().to_bits(),
        "energy must be bit-identical"
    );
}

/// An explicit `FaultConfig::none()` must be indistinguishable from never
/// mentioning faults at all: the fault-free path consumes no randomness
/// and adds no bookkeeping, so the reports serialize byte-identically.
#[test]
fn explicit_no_faults_is_bit_identical_to_the_baseline() {
    let run = |with_faults: bool| {
        let mut b = base("mixB")
            .policy(PolicyKind::NetworkAware)
            .mechanism(Mechanism::VwlRoo)
            .eval_period(SimDuration::from_us(150));
        if with_faults {
            b = b.faults(memnet::faults::FaultConfig::none());
        }
        b.build().unwrap().run()
    };
    let explicit = run(true);
    let implicit = run(false);
    assert_eq!(
        serde::json::to_string(&explicit),
        serde::json::to_string(&implicit),
        "FaultConfig::none() must not perturb a single bit of the report"
    );
}

/// Satellite: `sweep()` must be order- and thread-count-invariant — the
/// same configurations at `threads = 1` and `threads = 4` serialize to
/// byte-identical JSON, so parallelism can never leak into results.
#[test]
fn sweep_is_deterministic_across_thread_counts() {
    let configs = || {
        vec![
            base("mixD").build().unwrap(),
            base("mixB")
                .policy(PolicyKind::NetworkAware)
                .mechanism(Mechanism::VwlRoo)
                .build()
                .unwrap(),
            base("lu.D")
                .policy(PolicyKind::NetworkUnaware)
                .mechanism(Mechanism::Roo)
                .build()
                .unwrap(),
            base("cg.D")
                .policy(PolicyKind::NetworkAware)
                .mechanism(Mechanism::DvfsRoo)
                .build()
                .unwrap(),
        ]
    };
    let serial = memnet::core::sweep(configs(), 1);
    let parallel = memnet::core::sweep(configs(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            serde::json::to_string(s),
            serde::json::to_string(p),
            "sweep results differ between threads=1 and threads=4 for {}/{}",
            s.workload,
            s.mechanism
        );
    }
}

/// The observability recorder must be a pure observer: an obs-enabled run
/// with its `obs` section stripped serializes byte-identically to the
/// obs-off run, and injecting an explicit `NullRecorder` is
/// indistinguishable from the default construction path.
#[test]
fn obs_recorder_never_perturbs_results() {
    let cfg = |enabled: bool| {
        let mut obs = memnet::obs::ObsConfig::off();
        obs.enabled = enabled;
        base("mixD")
            .policy(PolicyKind::NetworkAware)
            .mechanism(Mechanism::VwlRoo)
            .eval_period(SimDuration::from_us(150))
            .obs(obs)
            .build()
            .unwrap()
    };
    let off = cfg(false).run();
    let mut on = cfg(true).run();
    assert!(off.obs.is_none());
    assert!(on.obs.take().is_some_and(|o| !o.epochs.is_empty()));
    assert_eq!(
        serde::json::to_string(&off),
        serde::json::to_string(&on),
        "enabling the recorder must not perturb a single bit outside the obs section"
    );

    let explicit_null = memnet::core::Engine::new(cfg(false))
        .with_recorder(Box::new(memnet::obs::NullRecorder))
        .run();
    assert_eq!(
        serde::json::to_string(&off),
        serde::json::to_string(&explicit_null),
        "an injected NullRecorder must match the default construction path"
    );
}

/// Thread-count invariance must survive obs being on: per-run recorders
/// share no state, so sweeps with time-series sampling enabled serialize
/// byte-identically at `threads = 1` and `threads = 4`.
#[test]
fn obs_sweep_is_deterministic_across_thread_counts() {
    let configs = || {
        ["mixD", "mixB", "lu.D", "cg.D"]
            .map(|w| {
                let mut obs = memnet::obs::ObsConfig::off();
                obs.enabled = true;
                base(w)
                    .policy(PolicyKind::NetworkAware)
                    .mechanism(Mechanism::VwlRoo)
                    .eval_period(SimDuration::from_us(150))
                    .obs(obs)
                    .build()
                    .unwrap()
            })
            .to_vec()
    };
    let serial = memnet::core::sweep(configs(), 1);
    let parallel = memnet::core::sweep(configs(), 4);
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(s.obs.as_ref().is_some_and(|o| !o.epochs.is_empty()), "{}: no samples", s.workload);
        assert_eq!(
            serde::json::to_string(s),
            serde::json::to_string(p),
            "obs-enabled sweep differs between threads=1 and threads=4 for {}",
            s.workload
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// I/O energy must be monotone in link width: for any residency
    /// profile, pricing it at a wider VWL mode can never cost less power
    /// than the next narrower one.
    #[test]
    fn link_power_monotone_in_vwl_width(
        idle_us in (0u64..2_000).prop_filter("some residency", |v| *v > 0),
        active_us in 0u64..2_000,
        off_us in 0u64..2_000,
    ) {
        let model = HmcPowerModel::paper();
        let snapshot = |mode: BwMode| {
            let mut snap = vec![SimDuration::ZERO; N_ACCOUNTING_STATES];
            snap[state_on_idle(mode)] = SimDuration::from_us(idle_us);
            snap[state_on_active(mode)] = SimDuration::from_us(active_us);
            snap[STATE_OFF] = SimDuration::from_us(off_us);
            let io = model.link_energy(&snap).io_total();
            prop_assert!(io.is_finite() && io >= 0.0, "unphysical I/O energy {}", io);
            Ok(io)
        };
        // VwlWidth::ALL is ordered widest → narrowest.
        for pair in VwlWidth::ALL.windows(2) {
            let wide = snapshot(BwMode::Vwl(pair[0]))?;
            let narrow = snapshot(BwMode::Vwl(pair[1]))?;
            prop_assert!(
                wide > narrow,
                "width {:?} priced at {} J but narrower {:?} at {} J",
                pair[0], wide, pair[1], narrow
            );
        }
    }

    /// Waking time is billed at full I/O power regardless of mode, and
    /// powered-off residency at the deep-sleep fraction — so shifting
    /// time from WAKING to OFF must strictly reduce I/O energy.
    #[test]
    fn sleeping_never_costs_more_than_waking(
        mode in prop::sample::select(&VwlWidth::ALL).prop_map(BwMode::Vwl),
        resident_us in 1u64..5_000,
    ) {
        let model = HmcPowerModel::paper();
        let price = |off_us: u64, waking_us: u64| {
            let mut snap = vec![SimDuration::ZERO; N_ACCOUNTING_STATES];
            snap[state_on_idle(mode)] = SimDuration::from_us(100);
            snap[STATE_OFF] = SimDuration::from_us(off_us);
            snap[STATE_WAKING] = SimDuration::from_us(waking_us);
            model.link_energy(&snap).io_total()
        };
        let sleeping = price(resident_us, 0);
        let waking = price(0, resident_us);
        prop_assert!(
            sleeping < waking,
            "{} µs off cost {} J but the same time waking cost {} J",
            resident_us, sleeping, waking
        );
    }
}
