//! Cross-model differential validation: both energy backends must run
//! clean under the full invariant audit, price identically where the
//! arithmetic says they must (the derived-table anchor), diverge where a
//! miscalibration is injected, and stay thread-count-invariant. Also
//! property-tests the IDD backend's physics (non-negativity, residency
//! monotonicity, window telescoping) and fuzzes the calibration CSV
//! parser and least-squares fitter.

use memnet::core::{report_text, Engine, NetworkScale, PolicyKind, SimConfig};
use memnet::net::mech::BwMode;
use memnet::net::{HmcRadix, TopologyKind};
use memnet::policy::Mechanism;
use memnet::power::{
    calib, EnergyBackend, EnergyBackendKind, HmcPowerModel, IddModel, ModuleActivity,
};
use memnet::simcore::AuditLevel;
use memnet_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

fn grid() -> [(PolicyKind, Mechanism); 6] {
    [
        (PolicyKind::FullPower, Mechanism::FullPower),
        (PolicyKind::NetworkUnaware, Mechanism::Roo),
        (PolicyKind::NetworkUnaware, Mechanism::Vwl),
        (PolicyKind::NetworkAware, Mechanism::VwlRoo),
        (PolicyKind::NetworkAware, Mechanism::Dvfs),
        (PolicyKind::NetworkAware, Mechanism::DvfsRoo),
    ]
}

fn base(policy: PolicyKind, mech: Mechanism) -> memnet::core::SimConfigBuilder {
    SimConfig::builder()
        .workload("mixD")
        .topology(TopologyKind::TernaryTree)
        .scale(NetworkScale::Small)
        .policy(policy)
        .mechanism(mech)
        .eval_period(SimDuration::from_us(100))
        .seed(11)
}

/// Satellite: both backends must independently satisfy packet/flit
/// conservation and double-entry I/O energy across the whole
/// policy/mechanism grid — the audit reprices telemetry through whichever
/// backend the engine used, so a clean report is a per-backend proof.
#[test]
fn both_backends_audit_clean_across_the_grid() {
    for (policy, mech) in grid() {
        let mut totals = Vec::new();
        for kind in EnergyBackendKind::ALL {
            let r = base(policy, mech)
                .audit(AuditLevel::Full)
                .energy_backend(kind)
                .build()
                .unwrap()
                .run();
            assert!(r.audit.checks_run > 0, "{policy:?}/{mech:?}/{kind:?} ran zero checks");
            assert!(
                r.audit.is_clean(),
                "{policy:?}/{mech:?}/{kind:?} violated invariants: {:?}",
                r.audit.violations
            );
            totals.push(r.power.energy.total());
        }
        // Sanity: the two pricings are genuinely different models.
        assert_ne!(totals[0].to_bits(), totals[1].to_bits(), "{policy:?}/{mech:?}");
    }
}

/// Satellite: the differential report separates honest model disagreement
/// from miscalibration. The stock IDD table sits inside the 5% band; a
/// 10% hot IDD4R pushes DRAM dynamic energy out of it.
#[test]
fn injected_idd4r_miscalibration_is_caught_by_the_differential_report() {
    let cfg = base(PolicyKind::NetworkAware, Mechanism::VwlRoo).build().unwrap();
    let reference = cfg.clone().run();
    let run_with = |model: IddModel| Engine::new(cfg.clone()).with_backend(Box::new(model)).run();

    let stock = run_with(IddModel::hmc_gen2());
    let rows = report_text::model_diff_energy_rows(&reference, &stock);
    let (_, flagged) = report_text::model_diff_table("analytical", "idd", &rows, 0.05);
    assert_eq!(flagged, 0, "stock IDD table must sit within 5% of the analytical model: {rows:?}");

    let mut hot = IddModel::hmc_gen2();
    hot.idd4r *= 1.10;
    let rows = report_text::model_diff_energy_rows(&reference, &run_with(hot));
    let (table, flagged) = report_text::model_diff_table("analytical", "idd", &rows, 0.05);
    assert!(flagged >= 1, "a 10% hot IDD4R must be flagged:\n{table}");
    let dram = rows.iter().find(|r| r.label.contains("DRAM Dynamic")).unwrap();
    assert!(
        dram.divergence() > 0.05,
        "the divergence must land in DRAM dynamic energy, got {:.4}",
        dram.divergence()
    );
    assert!(table.contains("<-- DIVERGES"), "the table must mark the offender:\n{table}");
}

/// Satellite: backend selection must not disturb determinism — per
/// backend, sweeps at `threads = 1` and `threads = 4` serialize to
/// byte-identical JSON.
#[test]
fn sweeps_are_thread_invariant_under_either_backend() {
    for kind in EnergyBackendKind::ALL {
        let configs = || {
            grid()
                .into_iter()
                .take(3)
                .map(|(p, m)| base(p, m).energy_backend(kind).build().unwrap())
                .collect::<Vec<_>>()
        };
        let serial = memnet::core::sweep(configs(), 1);
        let parallel = memnet::core::sweep(configs(), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                serde::json::to_string(s),
                serde::json::to_string(p),
                "{kind:?}: sweep differs between threads=1 and threads=4 for {}",
                s.mechanism
            );
        }
    }
}

/// The metamorphic anchor at full-run scale: an IDD table derived from
/// the analytical parameters must reproduce the analytical run
/// bit-identically — whole reports, not just unit prices.
#[test]
fn derived_idd_table_reproduces_the_analytical_run_bit_for_bit() {
    let cfg = base(PolicyKind::NetworkAware, Mechanism::VwlRoo)
        .eval_period(SimDuration::from_us(50))
        .build()
        .unwrap();
    let analytical = cfg.clone().run();
    let derived = IddModel::from_analytical(&HmcPowerModel::paper());
    let idd = Engine::new(cfg).with_backend(Box::new(derived)).run();
    assert_eq!(
        serde::json::to_string(&analytical),
        serde::json::to_string(&idd),
        "derived IDD table must be indistinguishable from the analytical model"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IDD link energy is physical: finite, non-negative, and strictly
    /// monotone in residency time (every state burns positive watts).
    #[test]
    fn idd_link_energy_is_physical_and_monotone(
        ns in prop::collection::vec(0u64..5_000_000, 26..27),
        bump_slot in 0usize..26,
    ) {
        let idd = IddModel::hmc_gen2();
        let snap: Vec<SimDuration> = ns.iter().map(|&n| SimDuration::from_ns(n)).collect();
        let e = EnergyBackend::link_energy(&idd, &snap);
        for (cat, v) in ["idle", "active", "retrans"]
            .iter()
            .zip([e.idle_io, e.active_io, e.retrans_io])
        {
            prop_assert!(v.is_finite() && v >= 0.0, "{cat} I/O energy {v} unphysical");
        }
        let mut longer = snap.clone();
        longer[bump_slot] += SimDuration::from_us(1);
        let e2 = EnergyBackend::link_energy(&idd, &longer);
        prop_assert!(
            e2.total() > e.total(),
            "more residency must cost more energy ({} vs {})", e2.total(), e.total()
        );
    }

    /// Link energy telescopes: pricing two residency snapshots separately
    /// and summing equals pricing their per-slot sum (to rounding).
    #[test]
    fn idd_link_energy_telescopes_across_split_windows(
        a in prop::collection::vec(0u64..5_000_000, 26..27),
        b in prop::collection::vec(0u64..5_000_000, 26..27),
    ) {
        let idd = IddModel::hmc_gen2();
        let to_snap = |v: &[u64]| -> Vec<SimDuration> {
            v.iter().map(|&n| SimDuration::from_ns(n)).collect()
        };
        let merged: Vec<SimDuration> =
            a.iter().zip(&b).map(|(&x, &y)| SimDuration::from_ns(x + y)).collect();
        let whole = EnergyBackend::link_energy(&idd, &merged).total();
        let parts = EnergyBackend::link_energy(&idd, &to_snap(&a)).total()
            + EnergyBackend::link_energy(&idd, &to_snap(&b)).total();
        prop_assert!(
            (whole - parts).abs() <= 1e-12 * whole.max(1e-30),
            "split-window pricing drifted: {whole} vs {parts}"
        );
    }

    /// Module energy telescopes across a window split, with the activity
    /// partitioned arbitrarily between the halves.
    #[test]
    fn idd_module_energy_telescopes_across_split_windows(
        t1_ns in 1u64..1_000_000,
        t2_ns in 1u64..1_000_000,
        reads in 0u64..10_000,
        writes in 0u64..10_000,
        flits in 0u64..100_000,
        split in 0.0f64..1.0,
    ) {
        let idd = IddModel::hmc_gen2();
        let mid = SimTime::ZERO + SimDuration::from_ns(t1_ns);
        let end = mid + SimDuration::from_ns(t2_ns);
        let first = ModuleActivity {
            dram_reads: (reads as f64 * split) as u64,
            dram_writes: (writes as f64 * split) as u64,
            flits_routed: (flits as f64 * split) as u64,
        };
        let rest = ModuleActivity {
            dram_reads: reads - first.dram_reads,
            dram_writes: writes - first.dram_writes,
            flits_routed: flits - first.flits_routed,
        };
        let all = ModuleActivity { dram_reads: reads, dram_writes: writes, flits_routed: flits };
        for radix in [HmcRadix::High, HmcRadix::Low] {
            let whole = idd.module_energy(radix, SimTime::ZERO, end, &all).total();
            let parts = idd.module_energy(radix, SimTime::ZERO, mid, &first).total()
                + idd.module_energy(radix, mid, end, &rest).total();
            prop_assert!(
                (whole - parts).abs() <= 1e-12 * whole.max(1e-30),
                "{radix:?}: split-window module pricing drifted: {whole} vs {parts}"
            );
        }
    }

    /// The CSV parser never panics, whatever bytes arrive.
    #[test]
    fn calibration_csv_parser_never_panics(
        bytes in prop::collection::vec(0u8..128, 0..400),
    ) {
        let text: String =
            bytes.iter().map(|&b| if b == 0 { ' ' } else { b as char }).collect();
        let _ = calib::parse_csv(&text);
    }

    /// Noiseless measurements generated from a perturbed model let the
    /// fitter recover the perturbed link currents from the stock base
    /// within the documented 1e-9 relative tolerance.
    #[test]
    fn fitter_round_trip_recovers_perturbed_currents(
        on_scale in 0.5f64..2.0,
        off_scale in 0.5f64..2.0,
        wake_scale in 0.5f64..2.0,
    ) {
        let mut truth = IddModel::hmc_gen2();
        truth.io_on_current *= on_scale;
        truth.io_off_current *= off_scale;
        truth.io_wake_current *= wake_scale;
        let mut csv = String::from("timestamp_s,mode,watts\n");
        let mut t = 0.0f64;
        for mode in BwMode::ALL {
            csv.push_str(&format!("{t},{},{}\n", mode.label(), truth.link_mode_watts(mode)));
            t += 0.5;
        }
        csv.push_str(&format!("{t},off,{}\n", truth.link_off_watts()));
        csv.push_str(&format!("{},waking,{}\n", t + 0.5, truth.link_waking_watts()));
        let rows = calib::parse_csv(&csv).expect("generated CSV parses");
        let (fitted, report) = calib::fit(&IddModel::hmc_gen2(), &rows).expect("fit succeeds");
        let rel = |x: f64, y: f64| (y - x).abs() / x.abs();
        prop_assert!(rel(truth.io_on_current, fitted.io_on_current) < 1e-9);
        prop_assert!(rel(truth.io_off_current, fitted.io_off_current) < 1e-9);
        prop_assert!(rel(truth.io_wake_current, fitted.io_wake_current) < 1e-9);
        prop_assert!(report.rms_watts < 1e-9, "noiseless fit residual {}", report.rms_watts);
    }
}

/// Structured rejection paths: each malformed variant fails with a
/// line-numbered, human-readable error rather than a panic or a silent
/// skip.
#[test]
fn calibration_csv_rejects_each_malformed_variant_with_line_numbers() {
    let cases = [
        ("", "empty file"),
        ("# only comments\n\n", "empty file"),
        ("0.0,off\n", "line 1"),
        ("0.0,off,0.1,extra\n", "line 1"),
        ("zero,off,0.1\n", "bad timestamp"),
        ("nan,off,0.1\n", "not finite"),
        ("0.0,warp9,0.1\n", "unknown mode"),
        ("0.0,off,watts\n", "bad watts"),
        ("0.0,off,-0.1\n", "non-negative"),
        ("0.0,off,inf\n", "finite"),
        ("timestamp_s,mode,watts\n5.0,off,0.1\n1.0,off,0.1\n", "line 3"),
    ];
    for (text, needle) in cases {
        let err = calib::parse_csv(text).expect_err(&format!("{text:?} must be rejected"));
        assert!(
            err.to_lowercase().contains(&needle.to_lowercase()),
            "error for {text:?} should mention {needle:?}, got: {err}"
        );
    }
}
