//! Integration tests for the manifest batch server: an in-process daemon
//! on an ephemeral port, driven by raw TCP clients speaking the JSONL
//! protocol, plus byte-identity checks against the offline
//! `memnet run-manifest` path through the real binary.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;
use std::thread::JoinHandle;
use std::time::Duration;

use memnet::serve::{Server, ServerConfig, Stats};
use serde::json::{self, Value};

/// Binds a server on an ephemeral port and runs it on its own thread.
/// The returned handle yields the final [`Stats`] after a shutdown op.
fn start_server(cfg: ServerConfig) -> (SocketAddr, JoinHandle<Stats>) {
    let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".to_owned(), ..cfg })
        .expect("ephemeral bind");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle)
}

/// One protocol client: line-oriented JSON in both directions.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        // A wedged server should fail the test, not hang it.
        stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn submit(&mut self, manifest: &str) {
        // The manifest may be pretty-printed; the wire form is one line.
        let doc = json::parse(manifest).expect("test manifest is valid JSON");
        self.send(&format!("{{\"op\":\"submit\",\"manifest\":{}}}", json::to_string(&doc)));
    }

    fn next_event(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read event");
        assert!(n > 0, "server closed the connection mid-stream");
        json::parse(&line).unwrap_or_else(|e| panic!("bad event line {line:?}: {}", e.0))
    }

    /// Reads events until a terminal one, returning `(kind, event, seen)`
    /// where `seen` is every event kind in arrival order.
    fn until_terminal(&mut self) -> (String, Value, Vec<String>) {
        let mut seen = Vec::new();
        loop {
            let event = self.next_event();
            let kind = event.get("event").unwrap().as_str().unwrap().to_owned();
            seen.push(kind.clone());
            match kind.as_str() {
                "done" | "failed" | "cancelled" | "rejected" | "error" => {
                    return (kind, event, seen)
                }
                _ => {}
            }
        }
    }

    fn shutdown(&mut self) {
        self.send("{\"op\":\"shutdown\"}");
    }
}

fn exit_code(event: &Value) -> i64 {
    event.get("result").unwrap().get("exit_code").unwrap().num::<i64>().unwrap()
}

fn cache_source(event: &Value) -> String {
    event
        .get("result")
        .unwrap()
        .get("cache")
        .unwrap()
        .get("source")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

fn result_text(event: &Value) -> String {
    json::to_string(event.get("result").unwrap())
}

fn flag(event: &Value, key: &str) -> bool {
    matches!(event.get(key).unwrap(), Value::Bool(true))
}

/// The quick reference run used throughout: ~140k events, sub-second.
const QUICK_RUN: &str = "\"run\":{\"workload\":\"mixD\",\"eval_us\":50,\"seed\":7}";

fn quick_manifest(extra: &str) -> String {
    format!("{{\"schema\":\"memnet-manifest\",\"v\":1,{QUICK_RUN}{extra}}}")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("memnet-serve-test-{}-{name}", std::process::id()))
}

#[test]
fn concurrent_identical_manifests_simulate_exactly_once() {
    // Single worker, no cache: dedup must come from in-flight coalescing
    // alone. The run is long enough (~1.5 s debug) that the concurrent
    // submissions overlap its execution comfortably.
    let (addr, handle) =
        start_server(ServerConfig { workers: 1, cache_dir: None, ..ServerConfig::default() });
    let manifest = "{\"schema\":\"memnet-manifest\",\"v\":1,\
         \"run\":{\"workload\":\"mixD\",\"eval_us\":250,\"seed\":7}}";

    let submitters: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.submit(manifest);
                client.until_terminal()
            })
        })
        .collect();
    let outcomes: Vec<_> = submitters.into_iter().map(|t| t.join().unwrap()).collect();

    let mut sources = Vec::new();
    let mut bodies = Vec::new();
    for (kind, event, seen) in &outcomes {
        assert_eq!(kind, "done", "all three submissions succeed: {seen:?}");
        assert_eq!(exit_code(event), 0);
        sources.push(cache_source(event));
        bodies.push(json::to_string(&event.get("result").unwrap().get("report").unwrap().clone()));
        assert!(seen.contains(&"queued".to_owned()), "lifecycle starts with queued: {seen:?}");
        assert!(seen.contains(&"started".to_owned()), "coalesced subs hear started too: {seen:?}");
    }
    sources.sort();
    assert_eq!(sources, ["coalesced", "coalesced", "simulated"], "exactly one real simulation");
    assert_eq!(bodies[0], bodies[1], "coalesced reports are byte-identical");
    assert_eq!(bodies[1], bodies[2], "coalesced reports are byte-identical");

    let mut admin = Client::connect(addr);
    admin.shutdown();
    let stats = handle.join().unwrap();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.simulated, 1, "identical concurrent manifests simulate once");
    assert_eq!(stats.coalesced, 2);
}

#[test]
fn daemon_result_is_byte_identical_to_run_manifest_and_disk_cache_serves_repeats() {
    let cache_dir = tmp("cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let manifest_path = tmp("byteident.json");
    let manifest = quick_manifest(",\"assertions\":{\"min_completed_reads\":1}");
    std::fs::write(&manifest_path, &manifest).unwrap();

    // Offline reference through the real binary.
    let out_path = tmp("byteident-out.json");
    let out = Command::new(env!("CARGO_BIN_EXE_memnet"))
        .args([
            "run-manifest",
            manifest_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .env_remove("MEMNET_FAULTS")
        .env_remove("MEMNET_TRACE")
        .env_remove("MEMNET_AUDIT")
        .env_remove("MEMNET_ENERGY_BACKEND")
        .output()
        .expect("memnet binary runs");
    assert!(out.status.success(), "run-manifest passes: {}", String::from_utf8_lossy(&out.stderr));
    let offline = std::fs::read_to_string(&out_path).unwrap().trim_end().to_owned();

    let (addr, handle) = start_server(ServerConfig {
        workers: 2,
        cache_dir: Some(cache_dir.clone()),
        ..ServerConfig::default()
    });

    // First submission simulates; its payload must equal the offline one
    // byte for byte.
    let mut client = Client::connect(addr);
    client.submit(&manifest);
    let (kind, event, _) = client.until_terminal();
    assert_eq!(kind, "done");
    assert_eq!(cache_source(&event), "simulated");
    assert_eq!(result_text(&event), offline, "daemon payload == run-manifest payload, bytewise");

    // Second submission is served from the persistent cache: provenance
    // flips, the report stays byte-identical, and nothing re-simulates.
    let mut repeat = Client::connect(addr);
    repeat.submit(&manifest);
    let (kind, event, seen) = repeat.until_terminal();
    assert_eq!(kind, "done");
    assert_eq!(cache_source(&event), "disk");
    assert!(
        event.get("result").unwrap().get("cache").unwrap().get("hit").unwrap().as_str().is_err(),
        "hit is a bool"
    );
    assert!(!seen.contains(&"started".to_owned()), "cache hits never start a worker: {seen:?}");
    let report_offline = json::parse(&offline).unwrap().get("report").unwrap().clone();
    let report_cached = event.get("result").unwrap().get("report").unwrap().clone();
    assert_eq!(json::to_string(&report_offline), json::to_string(&report_cached));

    let mut admin = Client::connect(addr);
    admin.shutdown();
    let stats = handle.join().unwrap();
    assert_eq!(stats.simulated, 1, "the repeat came from disk");
    assert_eq!(stats.cache_hits, 1);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_file(&manifest_path);
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn mixed_batch_reports_documented_exit_codes() {
    let (addr, handle) =
        start_server(ServerConfig { workers: 2, cache_dir: None, ..ServerConfig::default() });

    // One passing run, one assertion failure, one unexpected limit, one
    // expected limit.
    let cases: [(&str, String, &str, i64); 4] = [
        ("pass", quick_manifest(""), "done", 0),
        (
            "assert-fail",
            quick_manifest(",\"assertions\":{\"max_total_energy_j\":0.0}"),
            "failed",
            2,
        ),
        (
            "limit",
            "{\"schema\":\"memnet-manifest\",\"v\":1,\
             \"run\":{\"workload\":\"mixD\",\"eval_us\":1000,\"seed\":7},\
             \"limits\":{\"max_sim_time_us\":50}}"
                .to_owned(),
            "failed",
            3,
        ),
        (
            "expected-limit",
            "{\"schema\":\"memnet-manifest\",\"v\":1,\
             \"run\":{\"workload\":\"mixD\",\"eval_us\":1000,\"seed\":7},\
             \"limits\":{\"max_sim_time_us\":50},\
             \"assertions\":{\"expected_exit\":\"limit_exceeded\"}}"
                .to_owned(),
            "done",
            0,
        ),
    ];
    let outcomes: Vec<_> = cases
        .map(|(label, manifest, want_kind, want_code)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.submit(&manifest);
                let (kind, event, _) = client.until_terminal();
                (label, want_kind, want_code, kind, event)
            })
        })
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for (label, want_kind, want_code, kind, event) in outcomes {
        assert_eq!(kind, want_kind, "{label}: terminal event kind");
        assert_eq!(exit_code(&event), want_code, "{label}: exit code contract");
        if label == "limit" || label == "expected-limit" {
            let stop = event.get("result").unwrap().get("stop").unwrap().as_str().unwrap();
            assert_eq!(stop, "max-sim-time", "{label}: stop reason surfaces");
        }
    }

    let mut admin = Client::connect(addr);
    admin.shutdown();
    let stats = handle.join().unwrap();
    // The two limit manifests differ only in assertions, so they share a
    // job key and may coalesce; the pass/assert-fail pair likewise. With
    // both pairs racing two workers, anywhere from 2 to 4 simulations is
    // legal — but never more.
    assert!(
        (2..=4).contains(&stats.simulated),
        "at most one simulation per distinct job key: {stats:?}"
    );
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn invalid_manifests_are_rejected_before_any_worker_is_occupied() {
    let (addr, handle) =
        start_server(ServerConfig { workers: 1, cache_dir: None, ..ServerConfig::default() });
    let mut client = Client::connect(addr);

    // (manifest, expected path fragment, expected message fragment)
    let cases = [
        (
            "{\"schema\":\"memnet-manifest\",\"v\":1,\"run\":{\"channels\":2}}".to_owned(),
            "run.channels",
            "single-channel",
        ),
        (
            "{\"schema\":\"memnet-manifest\",\"v\":1,\"run\":{\"workload\":\"nope\"}}".to_owned(),
            "run.workload",
            "unknown workload",
        ),
        (
            "{\"schema\":\"memnet-manifest\",\"v\":1,\"run\":{\"energy_backend\":\"spice\"}}"
                .to_owned(),
            "run.energy_backend",
            "unknown energy backend",
        ),
        (
            "{\"schema\":\"memnet-manifest\",\"v\":1,\"run\":{\"calibration\":\"c.json\"}}"
                .to_owned(),
            "run.calibration",
            "idd",
        ),
        (
            "{\"schema\":\"memnet-manifest\",\"v\":1,\"limits\":{\"max_event\":5}}".to_owned(),
            "limits.max_event",
            "unknown key",
        ),
        (quick_manifest(",\"run_replay\":1"), "run_replay", "unknown key"),
    ];
    for (manifest, path, msg) in cases {
        client.submit(&manifest);
        let (kind, event, seen) = client.until_terminal();
        assert_eq!(kind, "rejected", "{path}: {seen:?}");
        assert_eq!(seen, ["rejected"], "{path}: rejection is the first and only event");
        let got_path = event.get("path").unwrap().as_str().unwrap();
        assert_eq!(got_path, path, "rejection names the offending field");
        let got_msg = event.get("error").unwrap().as_str().unwrap();
        assert!(got_msg.contains(msg), "{path}: {got_msg:?} should mention {msg:?}");
    }

    client.shutdown();
    let stats = handle.join().unwrap();
    assert_eq!(stats.rejected, 6);
    assert_eq!(stats.submitted, 0, "rejections never count as accepted work");
    assert_eq!(stats.simulated, 0, "no worker ever ran");
}

#[test]
fn cancel_works_on_queued_and_running_jobs() {
    // One worker: the first job runs (long), the second stays queued.
    let (addr, handle) =
        start_server(ServerConfig { workers: 1, cache_dir: None, ..ServerConfig::default() });
    let long_run = "{\"schema\":\"memnet-manifest\",\"v\":1,\
                    \"run\":{\"workload\":\"mixD\",\"eval_us\":20000,\"seed\":7}}";

    let mut first = Client::connect(addr);
    first.submit(long_run);
    let queued = first.next_event();
    assert_eq!(queued.get("event").unwrap().as_str().unwrap(), "queued");
    let first_id = queued.get("job").unwrap().num::<u64>().unwrap();
    let started = first.next_event();
    assert_eq!(started.get("event").unwrap().as_str().unwrap(), "started");

    // A different (still long) job queues behind it.
    let mut second = Client::connect(addr);
    second.submit(
        "{\"schema\":\"memnet-manifest\",\"v\":1,\
         \"run\":{\"workload\":\"mixD\",\"eval_us\":20000,\"seed\":8}}",
    );
    let queued = second.next_event();
    assert_eq!(queued.get("event").unwrap().as_str().unwrap(), "queued");
    let second_id = queued.get("job").unwrap().num::<u64>().unwrap();

    // Cancel the queued job: immediate `cancelled`, no result, and it
    // never occupies the worker.
    second.send(&format!("{{\"op\":\"cancel\",\"job\":{second_id}}}"));
    let cancelled = second.next_event();
    assert_eq!(cancelled.get("event").unwrap().as_str().unwrap(), "cancelled");
    assert!(cancelled.get("result").is_err(), "a never-run job has no result");

    // Cancel the running job: the engine stops at the next poll and the
    // payload reports the cancelled contract.
    first.send(&format!("{{\"op\":\"cancel\",\"job\":{first_id}}}"));
    let (kind, event, _) = first.until_terminal();
    assert_eq!(kind, "cancelled");
    assert_eq!(exit_code(&event), 5);
    let result = event.get("result").unwrap();
    assert_eq!(result.get("stop").unwrap().as_str().unwrap(), "cancelled");
    assert_eq!(result.get("exit").unwrap().as_str().unwrap(), "cancelled");

    let mut admin = Client::connect(addr);
    admin.shutdown();
    let stats = handle.join().unwrap();
    assert_eq!(stats.simulated, 1, "the queued job never ran");
    assert_eq!(stats.cancelled, 2);
}

#[test]
fn progress_events_stream_while_a_job_runs() {
    let (addr, handle) = start_server(ServerConfig {
        workers: 1,
        cache_dir: None,
        progress_every: 50_000,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr);
    client.submit(&quick_manifest("")); // ~140k events → at least 2 ticks
    let (kind, _, seen) = client.until_terminal();
    assert_eq!(kind, "done");
    let ticks = seen.iter().filter(|k| *k == "progress").count();
    assert!(ticks >= 2, "expected progress events at 50k-event cadence: {seen:?}");
    let started_at = seen.iter().position(|k| k == "started").unwrap();
    let first_tick = seen.iter().position(|k| k == "progress").unwrap();
    assert!(first_tick > started_at, "progress only after started: {seen:?}");

    client.shutdown();
    handle.join().unwrap();
}

#[test]
fn graceful_shutdown_finishes_inflight_work_and_refuses_new_submissions() {
    let (addr, handle) =
        start_server(ServerConfig { workers: 1, cache_dir: None, ..ServerConfig::default() });

    // A job long enough to still be running when the shutdown lands.
    let mut worker_client = Client::connect(addr);
    worker_client.submit(
        "{\"schema\":\"memnet-manifest\",\"v\":1,\
         \"run\":{\"workload\":\"mixD\",\"eval_us\":500,\"seed\":7}}",
    );
    let queued = worker_client.next_event();
    assert_eq!(queued.get("event").unwrap().as_str().unwrap(), "queued");

    // Connect before the shutdown lands: once the drain starts, the
    // accept loop stops taking new sockets entirely, so only
    // already-connected clients can even attempt a late submission.
    let mut late = Client::connect(addr);

    let mut admin = Client::connect(addr);
    admin.shutdown();
    let reply = admin.next_event();
    assert_eq!(reply.get("event").unwrap().as_str().unwrap(), "shutting-down");

    // New work is refused with a clear error...
    late.submit(&quick_manifest(""));
    let (kind, event, _) = late.until_terminal();
    assert_eq!(kind, "rejected");
    let msg = event.get("error").unwrap().as_str().unwrap();
    assert!(msg.contains("shutting down"), "clear refusal: {msg:?}");

    // ...while the in-flight job still completes and delivers its result.
    let (kind, event, _) = worker_client.until_terminal();
    assert_eq!(kind, "done");
    assert_eq!(exit_code(&event), 0);

    let stats = handle.join().unwrap();
    assert_eq!(stats.simulated, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.rejected, 1);
}

#[test]
fn sweep_manifest_farms_out_and_merges_byte_identical_to_offline() {
    let offline_out = tmp("sweep-offline.jsonl");
    let daemon_out = tmp("sweep-daemon.jsonl");
    let manifest_path = tmp("sweep-manifest.json");
    let _ = std::fs::remove_file(&offline_out);
    let _ = std::fs::remove_file(&daemon_out);

    // Offline unsharded reference through the real binary: a v2 sweep
    // manifest with shards defaulted to 1.
    let offline_manifest = format!(
        "{{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{{\
         \"figures\":[\"model_diff\"],\"eval_us\":20,\"out\":\"{}\"}}}}",
        offline_out.display()
    );
    std::fs::write(&manifest_path, &offline_manifest).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_memnet"))
        .args(["run-manifest", manifest_path.to_str().unwrap()])
        .env_remove("MEMNET_FAULTS")
        .env_remove("MEMNET_TRACE")
        .env_remove("MEMNET_AUDIT")
        .env_remove("MEMNET_ENERGY_BACKEND")
        .output()
        .expect("memnet binary runs");
    assert!(
        out.status.success(),
        "offline sweep manifest passes: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The daemon farms the same sweep out as three shard jobs across two
    // workers, merges, and writes the out path server-side.
    let (addr, handle) =
        start_server(ServerConfig { workers: 2, cache_dir: None, ..ServerConfig::default() });
    let mut client = Client::connect(addr);
    client.submit(&format!(
        "{{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{{\
         \"figures\":[\"model_diff\"],\"eval_us\":20,\"shards\":3,\"out\":\"{}\"}}}}",
        daemon_out.display()
    ));
    let queued = client.next_event();
    assert_eq!(queued.get("event").unwrap().as_str().unwrap(), "queued");
    assert!(flag(&queued, "sweep"), "queued event flags the sweep");
    assert_eq!(queued.get("shards").unwrap().num::<u64>().unwrap(), 3);

    let (kind, event, seen) = client.until_terminal();
    assert_eq!(kind, "done", "sweep completes: {seen:?}");
    assert_eq!(exit_code(&event), 0);
    assert!(seen.contains(&"started".to_owned()), "farm-out announces started: {seen:?}");
    let ticks = seen.iter().filter(|k| *k == "progress").count();
    assert!(ticks >= 2, "one progress event per retired shard: {seen:?}");
    let result = event.get("result").unwrap();
    assert_eq!(result.get("schema").unwrap().as_str().unwrap(), "memnet-sweep-result");
    assert_eq!(result.get("shards").unwrap().num::<u64>().unwrap(), 3);
    let cells = result.get("cells").unwrap().num::<u64>().unwrap();
    assert_eq!(result.get("requested").unwrap().num::<u64>().unwrap(), cells);

    // The shard→merge output is byte-identical to the unsharded run.
    let offline = std::fs::read(&offline_out).unwrap();
    let daemon = std::fs::read(&daemon_out).unwrap();
    assert!(!offline.is_empty(), "offline sweep wrote its out file");
    assert_eq!(offline, daemon, "daemon merge == offline unsharded sweep, bytewise");

    let mut admin = Client::connect(addr);
    admin.shutdown();
    let stats = handle.join().unwrap();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.sweeps, 1);
    assert_eq!(stats.shards, 3, "every shard ran as its own queue item");
    assert_eq!(stats.simulated, 0, "shard executions are counted as shards, not runs");
    assert_eq!(stats.completed, 1);
    let _ = std::fs::remove_file(&offline_out);
    let _ = std::fs::remove_file(&daemon_out);
    let _ = std::fs::remove_file(&manifest_path);
}

#[test]
fn identical_sweep_submissions_coalesce_into_one_farm_out() {
    // One worker: the first submission's shards occupy the queue long
    // enough for the identical second submission to coalesce onto them.
    let (addr, handle) =
        start_server(ServerConfig { workers: 1, cache_dir: None, ..ServerConfig::default() });
    let manifest = "{\"schema\":\"memnet-manifest\",\"v\":2,\
         \"sweep\":{\"figures\":[\"model_diff\"],\"eval_us\":100,\"shards\":2}}";

    let mut first = Client::connect(addr);
    first.submit(manifest);
    let queued = first.next_event();
    assert_eq!(queued.get("event").unwrap().as_str().unwrap(), "queued");
    assert!(!flag(&queued, "coalesced"));

    let mut second = Client::connect(addr);
    second.submit(manifest);
    let queued = second.next_event();
    assert_eq!(queued.get("event").unwrap().as_str().unwrap(), "queued");
    assert!(flag(&queued, "coalesced"), "identical sweep coalesces");

    let (kind, event_a, _) = first.until_terminal();
    assert_eq!(kind, "done");
    let (kind, event_b, _) = second.until_terminal();
    assert_eq!(kind, "done");
    assert_eq!(exit_code(&event_a), 0);
    assert_eq!(
        result_text(&event_a),
        result_text(&event_b),
        "coalesced subscribers get the same payload"
    );

    let mut admin = Client::connect(addr);
    admin.shutdown();
    let stats = handle.join().unwrap();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.sweeps, 1, "the sweep farmed out once");
    assert_eq!(stats.coalesced, 1);
    assert_eq!(stats.shards, 2, "two shard executions, not four");
    assert_eq!(stats.completed, 2, "both subscribers complete");
}

#[test]
fn status_op_reports_counters() {
    let (addr, handle) =
        start_server(ServerConfig { workers: 1, cache_dir: None, ..ServerConfig::default() });
    let mut client = Client::connect(addr);
    client.submit(&quick_manifest(""));
    let (kind, _, _) = client.until_terminal();
    assert_eq!(kind, "done");

    client.send("{\"op\":\"status\"}");
    let status = client.next_event();
    assert_eq!(status.get("event").unwrap().as_str().unwrap(), "status");
    assert_eq!(status.get("queued").unwrap().num::<u64>().unwrap(), 0);
    assert_eq!(status.get("running").unwrap().num::<u64>().unwrap(), 0);
    let stats = status.get("stats").unwrap();
    assert_eq!(stats.get("submitted").unwrap().num::<u64>().unwrap(), 1);
    assert_eq!(stats.get("simulated").unwrap().num::<u64>().unwrap(), 1);

    client.shutdown();
    handle.join().unwrap();
}
