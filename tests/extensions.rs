//! Integration tests for the extension features: trace capture,
//! multi-channel simulation, text reports and the weighted static widths.

use memnet::core::multichannel::run_channels;
use memnet::core::{report_text, PolicyKind, SimConfig, TracePoint};
use memnet::net::{Topology, TopologyKind};
use memnet::policy::{weighted_width_decisions, Mechanism};
use memnet_simcore::SimDuration;

#[test]
fn trace_capture_records_complete_transactions() {
    let report = SimConfig::builder()
        .workload("mixE")
        .topology(TopologyKind::TernaryTree)
        .eval_period(SimDuration::from_us(60))
        .trace_limit(100_000)
        .build()
        .unwrap()
        .run();
    assert!(!report.trace.is_empty(), "tracing was enabled but recorded nothing");

    // Pick a retired transaction and verify its milestone ordering.
    let retired =
        report.trace.iter().find(|e| e.point == TracePoint::Retire).expect("some read retired");
    let tx: Vec<_> = report.trace.iter().filter(|e| e.packet == retired.packet).collect();
    assert!(tx.len() >= 4, "a read needs inject/link/vault/retire milestones");
    // Time-ordered.
    for w in tx.windows(2) {
        assert!(w[1].time >= w[0].time);
    }
    assert_eq!(tx.first().unwrap().point, TracePoint::Inject);
    assert_eq!(tx.last().unwrap().point, TracePoint::Retire);
    // It must have visited a vault between injection and retirement.
    assert!(tx.iter().any(|e| matches!(e.point, TracePoint::VaultEnqueue(_))));
    assert!(tx.iter().any(|e| matches!(e.point, TracePoint::VaultDone(_))));
}

#[test]
fn tracing_disabled_by_default_and_costs_nothing() {
    let report = SimConfig::builder()
        .workload("mixE")
        .eval_period(SimDuration::from_us(30))
        .build()
        .unwrap()
        .run();
    assert!(report.trace.is_empty());
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let run = |limit: usize| {
        SimConfig::builder()
            .workload("mixD")
            .eval_period(SimDuration::from_us(50))
            .trace_limit(limit)
            .build()
            .unwrap()
            .run()
    };
    let with = run(10_000);
    let without = run(0);
    assert_eq!(with.completed_reads, without.completed_reads);
    assert_eq!(with.injected_accesses, without.injected_accesses);
    assert!((with.power.energy.total() - without.power.energy.total()).abs() < 1e-12);
}

#[test]
fn multichannel_power_exceeds_single_channel() {
    let cfg = SimConfig::builder()
        .workload("mixD")
        .eval_period(SimDuration::from_us(40))
        .build()
        .unwrap();
    let one = run_channels(cfg.clone(), 1, 1);
    let two = run_channels(cfg, 2, 1);
    // Two networks of always-on links burn more total power...
    assert!(two.total_watts > one.total_watts);
    // ...and idle a larger share of it.
    assert!(two.idle_io_fraction >= one.idle_io_fraction - 1e-9);
}

#[test]
fn report_text_renders_managed_runs() {
    let report = SimConfig::builder()
        .workload("mixD")
        .policy(PolicyKind::NetworkAware)
        .mechanism(Mechanism::VwlRoo)
        .eval_period(SimDuration::from_us(60))
        .build()
        .unwrap()
        .run();
    let text = report_text::power_breakdown(&report);
    assert!(text.contains("network-aware"));
    assert!(text.contains("Idle I/O"));
    let line = report_text::summary_line(&report);
    assert!(line.contains("mixD"));
}

#[test]
fn weighted_static_widths_are_usable_for_planning() {
    // Derive per-module weights from a workload CDF at big-network
    // granularity and check the hot modules get wide links.
    let spec = memnet::workload::catalog::by_name("cg.D").unwrap();
    let cdf = memnet::workload::AddressCdf::from_spec(&spec);
    let n = spec.footprint_gb as usize; // 1 GB per module
    let weights: Vec<f64> =
        (0..n).map(|m| cdf.fraction_at((m + 1) as f64) - cdf.fraction_at(m as f64)).collect();
    let topo = Topology::build(TopologyKind::DaisyChain, n);
    let ds = weighted_width_decisions(&topo, &weights, 1.2);
    // The root edge carries all traffic; the last edge carries only the
    // coldest gigabyte.
    let first = ds[0].mode.bw.bandwidth_fraction();
    let last = ds[2 * (n - 1)].mode.bw.bandwidth_fraction();
    assert!(first > last, "root {first} should be wider than tail {last}");
}
