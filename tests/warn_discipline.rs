//! Lint test: library code never writes to stderr with a bare
//! `eprintln!`. Every stderr line goes through `memnet_simcore`'s
//! `memnet_warn!` (problems) or `memnet_log!` (progress) so the output
//! stays uniformly greppable — `[memnet:warn]` finds every warning in a
//! CI log regardless of which subsystem emitted it.
//!
//! Scope is `crates/*/src`: the thin `memnet` binary (`src/main.rs`) may
//! still print fatal usage errors directly, and test code is free to
//! print whatever it likes.

use std::path::{Path, PathBuf};

/// The one file allowed to contain `eprintln!`: the macro definitions
/// themselves.
const ALLOWED: &str = "crates/simcore/src/warn.rs";

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_bare_eprintln_in_library_code() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let crates = root.join("crates");
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&crates).expect("crates/ exists") {
        let src = entry.expect("readable crates/ entry").path().join("src");
        if src.is_dir() {
            rust_sources(&src, &mut sources);
        }
    }
    assert!(sources.len() > 10, "source scan found only {} files", sources.len());

    let mut offenders = Vec::new();
    for path in sources {
        let rel = path.strip_prefix(root).unwrap().to_string_lossy().replace('\\', "/");
        if rel == ALLOWED {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable source file");
        for (i, line) in text.lines().enumerate() {
            if line.contains("eprintln!") {
                offenders.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare eprintln! in library code — route through memnet_warn!/memnet_log!:\n{}",
        offenders.join("\n")
    );
}
