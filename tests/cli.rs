//! CLI-level tests: argument handling, the unknown-workload error path,
//! and the `record`/`replay` subcommand round trip, driven through the
//! real `memnet` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn memnet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memnet"))
        .args(args)
        // Keep CLI behavior independent of ambient configuration.
        .env_remove("MEMNET_FAULTS")
        .env_remove("MEMNET_TRACE")
        .env_remove("MEMNET_AUDIT")
        .output()
        .expect("memnet binary runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("memnet-cli-test-{}-{name}", std::process::id()))
}

#[test]
fn unknown_workload_lists_valid_names() {
    let out = memnet(&["--workload", "nope"]);
    assert!(!out.status.success(), "unknown workload must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown workload \"nope\""), "names the culprit: {err}");
    // The error enumerates both catalogs so the user can pick a real one.
    assert!(err.contains("mixB") && err.contains("ua.D"), "catalog names listed: {err}");
    assert!(err.contains("adv.wakestorm"), "stress names listed: {err}");
}

#[test]
fn record_then_replay_reproduces_the_live_report() {
    let trace = tmp("roundtrip.jsonl");
    let trace_s = trace.to_str().unwrap();
    let run_flags = ["--workload", "mixD", "--eval-us", "50", "--seed", "7"];

    let rec = memnet(&[&["record", trace_s], &run_flags[..]].concat());
    assert!(rec.status.success(), "record failed: {}", String::from_utf8_lossy(&rec.stderr));

    // Replay inherits workload and seed from the trace header.
    let replayed = memnet(&["replay", trace_s, "--eval-us", "50", "--json"]);
    assert!(
        replayed.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&replayed.stderr)
    );
    let live = memnet(&[&run_flags[..], &["--json"]].concat());
    assert!(live.status.success());
    assert_eq!(
        String::from_utf8_lossy(&replayed.stdout),
        String::from_utf8_lossy(&live.stdout),
        "replay JSON differs from the live run"
    );
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn replay_rejects_corrupt_traces_and_multichannel() {
    let trace = tmp("corrupt.jsonl");
    std::fs::write(&trace, "{\"schema\":\"bogus\"}\n").unwrap();
    let out = memnet(&["replay", trace.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt trace must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid trace"));
    let _ = std::fs::remove_file(&trace);

    let out = memnet(&["replay", "/nonexistent.jsonl", "--channels", "2"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("single-channel"),
        "multichannel replay must be refused before touching the file"
    );
}

#[test]
fn stress_workloads_run_from_the_cli() {
    let out = memnet(&["--workload", "adv.flip", "--eval-us", "50", "--json"]);
    assert!(out.status.success(), "stress run failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"workload\":\"adv.flip\""), "report names the workload: {stdout}");

    let listed = memnet(&["--list-workloads"]);
    assert!(listed.status.success());
    let names = String::from_utf8_lossy(&listed.stdout);
    assert!(names.contains("adv.wakestorm"), "--list-workloads shows stress specs: {names}");
}
