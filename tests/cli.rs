//! CLI-level tests: argument handling, the unknown-workload error path,
//! and the `record`/`replay` subcommand round trip, driven through the
//! real `memnet` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn memnet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memnet"))
        .args(args)
        // Keep CLI behavior independent of ambient configuration.
        .env_remove("MEMNET_FAULTS")
        .env_remove("MEMNET_TRACE")
        .env_remove("MEMNET_AUDIT")
        .env_remove("MEMNET_ENERGY_BACKEND")
        .output()
        .expect("memnet binary runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("memnet-cli-test-{}-{name}", std::process::id()))
}

#[test]
fn unknown_workload_lists_valid_names() {
    let out = memnet(&["--workload", "nope"]);
    assert!(!out.status.success(), "unknown workload must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown workload \"nope\""), "names the culprit: {err}");
    // The error enumerates both catalogs so the user can pick a real one.
    assert!(err.contains("mixB") && err.contains("ua.D"), "catalog names listed: {err}");
    assert!(err.contains("adv.wakestorm"), "stress names listed: {err}");
}

#[test]
fn record_then_replay_reproduces_the_live_report() {
    let trace = tmp("roundtrip.jsonl");
    let trace_s = trace.to_str().unwrap();
    let run_flags = ["--workload", "mixD", "--eval-us", "50", "--seed", "7"];

    let rec = memnet(&[&["record", trace_s], &run_flags[..]].concat());
    assert!(rec.status.success(), "record failed: {}", String::from_utf8_lossy(&rec.stderr));

    // Replay inherits workload and seed from the trace header.
    let replayed = memnet(&["replay", trace_s, "--eval-us", "50", "--json"]);
    assert!(
        replayed.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&replayed.stderr)
    );
    let live = memnet(&[&run_flags[..], &["--json"]].concat());
    assert!(live.status.success());
    assert_eq!(
        String::from_utf8_lossy(&replayed.stdout),
        String::from_utf8_lossy(&live.stdout),
        "replay JSON differs from the live run"
    );
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn replay_rejects_corrupt_traces_and_multichannel() {
    let trace = tmp("corrupt.jsonl");
    std::fs::write(&trace, "{\"schema\":\"bogus\"}\n").unwrap();
    let out = memnet(&["replay", trace.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt trace must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid trace"));
    let _ = std::fs::remove_file(&trace);

    let out = memnet(&["replay", "/nonexistent.jsonl", "--channels", "2"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("single-channel"),
        "multichannel replay must be refused before touching the file"
    );
}

#[test]
fn energy_backend_flag_changes_pricing_but_not_behavior() {
    let base = ["--workload", "mixD", "--eval-us", "50", "--seed", "7", "--json"];
    let analytical = memnet(&[&base[..], &["--energy-backend", "analytical"]].concat());
    let idd = memnet(&[&base[..], &["--energy-backend", "idd"]].concat());
    assert!(analytical.status.success() && idd.status.success());
    let (a, b) =
        (String::from_utf8_lossy(&analytical.stdout), String::from_utf8_lossy(&idd.stdout));
    assert_ne!(a, b, "the two backends must price energy differently");
    // Pricing never feeds back into simulation: the behavioral counters match.
    let field = |s: &str, key: &str| {
        s.split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .map(str::to_owned)
            .unwrap_or_else(|| panic!("{key} missing in {s}"))
    };
    for key in ["completed_reads", "accesses_per_us", "violations", "mean_read_latency_ns"] {
        assert_eq!(field(&a, key), field(&b, key), "{key} must not depend on the backend");
    }

    let bogus = memnet(&[&base[..], &["--energy-backend", "spice"]].concat());
    assert!(!bogus.status.success());
    assert!(String::from_utf8_lossy(&bogus.stderr).contains("unknown energy backend"));
}

#[test]
fn diff_models_flags_divergence_and_accepts_calibration() {
    let run = ["--workload", "mixD", "--eval-us", "50", "--seed", "7"];
    // The stock IDD table sits within the default 5% band of the
    // analytical model, so the default run passes...
    let ok = memnet(&[&["diff-models"], &run[..]].concat());
    assert!(ok.status.success(), "default diff failed: {}", String::from_utf8_lossy(&ok.stderr));
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("link watts (vwl16)") && stdout.contains("energy (total)"));

    // ...an absurdly tight threshold flags the honest 2-3% gaps and exits
    // non-zero...
    let tight = memnet(&[&["diff-models", "--threshold", "0.5"], &run[..]].concat());
    assert!(!tight.status.success(), "0.5% threshold must flag the stock models");
    assert!(String::from_utf8_lossy(&tight.stdout).contains("<-- DIVERGES"));

    // ...and a miscalibrated IDD table (10% hot on the on-state current)
    // is caught at the default threshold.
    let calib = tmp("hot.json");
    let json = r#"{"vdd":1.2,"vddq":1.2,"vlogic":0.9,"idd2n":0.47,"idd0":0.07,
        "idd4r":0.068,"idd4w":0.072,"t_activate":8e-9,"t_burst":8e-9,
        "ilogic_idle":0.84,"q_flit":1.01e-10,"io_on_current":0.5225,
        "io_off_current":0.005,"io_wake_current":0.475}"#
        .replace(['\n', ' '], "");
    std::fs::write(&calib, json).unwrap();
    let hot =
        memnet(&[&["diff-models", "--calibration", calib.to_str().unwrap()], &run[..]].concat());
    assert!(!hot.status.success(), "10% miscalibration must exit non-zero");
    assert!(String::from_utf8_lossy(&hot.stdout).contains("<-- DIVERGES"));
    let _ = std::fs::remove_file(&calib);
}

#[test]
fn calibrate_round_trips_through_diff_models() {
    let csv = tmp("meas.csv");
    std::fs::write(
        &csv,
        "timestamp_s,mode,watts\n\
         0.0,off,0.0059\n1.0,waking,0.586\n2.0,vwl16,0.586\n3.0,dvfs50,0.2052\n",
    )
    .unwrap();
    let out_json = tmp("calib.json");
    let fit = memnet(&["calibrate", csv.to_str().unwrap(), "--out", out_json.to_str().unwrap()]);
    assert!(fit.status.success(), "calibrate failed: {}", String::from_utf8_lossy(&fit.stderr));
    assert!(String::from_utf8_lossy(&fit.stderr).contains("rms residual"));

    // Measurements generated from the analytical watts pull the IDD link
    // currents onto the analytical model, so the calibrated diff passes.
    let diff = memnet(&[
        "diff-models",
        "--calibration",
        out_json.to_str().unwrap(),
        "--workload",
        "mixD",
        "--eval-us",
        "50",
    ]);
    assert!(
        diff.status.success(),
        "calibrated diff failed: {}",
        String::from_utf8_lossy(&diff.stdout)
    );

    // Malformed measurements are rejected with a line-numbered error.
    std::fs::write(&csv, "timestamp_s,mode,watts\n5.0,vwl16,0.5\n1.0,vwl16,0.5\n").unwrap();
    let bad = memnet(&["calibrate", csv.to_str().unwrap()]);
    assert!(!bad.status.success(), "out-of-order timestamps must be rejected");
    assert!(String::from_utf8_lossy(&bad.stderr).contains("line 3"));
    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_file(&out_json);
}

#[test]
fn stress_workloads_run_from_the_cli() {
    let out = memnet(&["--workload", "adv.flip", "--eval-us", "50", "--json"]);
    assert!(out.status.success(), "stress run failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"workload\":\"adv.flip\""), "report names the workload: {stdout}");

    let listed = memnet(&["--list-workloads"]);
    assert!(listed.status.success());
    let names = String::from_utf8_lossy(&listed.stdout);
    assert!(names.contains("adv.wakestorm"), "--list-workloads shows stress specs: {names}");
}

#[test]
fn run_manifest_reports_the_exit_contract_and_ignores_backend_env() {
    let manifest = tmp("manifest.json");
    std::fs::write(
        &manifest,
        "{\n  \"schema\": \"memnet-manifest\",\n  \"v\": 1,\n  \"run\": {\n    \
         \"workload\": \"mixD\",\n    \"eval_us\": 50,\n    \"seed\": 7\n  }\n}\n",
    )
    .unwrap();

    // A passing manifest exits 0 with the payload on stdout — even with a
    // contradicting MEMNET_ENERGY_BACKEND in the environment, which
    // manifests must never read (it would poison the shared cache).
    let out = Command::new(env!("CARGO_BIN_EXE_memnet"))
        .args(["run-manifest", manifest.to_str().unwrap()])
        .env_remove("MEMNET_FAULTS")
        .env_remove("MEMNET_TRACE")
        .env_remove("MEMNET_AUDIT")
        .env("MEMNET_ENERGY_BACKEND", "idd")
        .output()
        .expect("memnet binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\":\"memnet-result\""), "payload on stdout: {stdout}");
    assert!(
        stdout.contains("energy=analytical"),
        "fingerprint pins the manifest's explicit default, not the env: {stdout}"
    );

    // An assertion failure exits 2; an unexpected limit exits 3.
    std::fs::write(
        &manifest,
        "{\"schema\":\"memnet-manifest\",\"v\":1,\
         \"run\":{\"workload\":\"mixD\",\"eval_us\":50,\"seed\":7},\
         \"assertions\":{\"max_total_energy_j\":0.0}}",
    )
    .unwrap();
    let out = memnet(&["run-manifest", manifest.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "assertion failure exit code");
    std::fs::write(
        &manifest,
        "{\"schema\":\"memnet-manifest\",\"v\":1,\
         \"run\":{\"workload\":\"mixD\",\"eval_us\":1000,\"seed\":7},\
         \"limits\":{\"max_sim_time_us\":50}}",
    )
    .unwrap();
    let out = memnet(&["run-manifest", manifest.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "limit-exceeded exit code");
    let _ = std::fs::remove_file(&manifest);
}

#[test]
fn run_manifest_rejections_carry_field_path_and_line() {
    let manifest = tmp("bad-manifest.json");
    std::fs::write(
        &manifest,
        "{\n  \"schema\": \"memnet-manifest\",\n  \"v\": 1,\n  \"run\": {\n    \
         \"topology\": \"moebius\"\n  }\n}\n",
    )
    .unwrap();
    let out = memnet(&["run-manifest", manifest.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4), "rejected manifests exit 4");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("run.topology (line 5)"),
        "error names the field and its line in the file: {err}"
    );
    assert!(err.contains("moebius"), "and echoes the bad value: {err}");
    let _ = std::fs::remove_file(&manifest);
}
