//! Golden-report regression harness: figure/table text is snapshotted
//! under `tests/golden/` and every run is diffed against the blessed
//! copy, so any change to simulation results or figure formatting shows
//! up as a readable line diff.
//!
//! To (re)bless the snapshots after an intentional change:
//!
//! ```text
//! MEMNET_BLESS=1 cargo test --test golden_reports
//! ```

use std::fs;
use std::path::PathBuf;

use memnet_bench::{figures, Matrix, Settings};
use memnet_simcore::SimDuration;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn blessing() -> bool {
    std::env::var("MEMNET_BLESS").is_ok_and(|v| matches!(v.as_str(), "1" | "true" | "yes"))
}

/// Renders a unified-style line diff, or `None` when the texts match.
fn line_diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0usize;
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i);
        let a = act.get(i);
        if e == a {
            continue;
        }
        if shown == 12 {
            out.push_str("  ... (more differences elided)\n");
            break;
        }
        shown += 1;
        match (e, a) {
            (Some(e), Some(a)) => {
                out.push_str(&format!("  line {}:\n    -{e}\n    +{a}\n", i + 1));
            }
            (Some(e), None) => {
                out.push_str(&format!("  line {} only in golden:\n    -{e}\n", i + 1))
            }
            (None, Some(a)) => {
                out.push_str(&format!("  line {} only in actual:\n    +{a}\n", i + 1))
            }
            (None, None) => unreachable!(),
        }
    }
    Some(out)
}

/// Compares `actual` against the blessed snapshot `name.txt`, rewriting
/// it instead when `MEMNET_BLESS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if blessing() {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden snapshot {}; run `MEMNET_BLESS=1 cargo test --test golden_reports` \
             to create it",
            path.display()
        )
    });
    if let Some(diff) = line_diff(&expected, actual) {
        panic!(
            "{name} diverged from its golden snapshot ({}):\n{diff}\
             If the change is intentional, re-bless with \
             `MEMNET_BLESS=1 cargo test --test golden_reports`.",
            path.display()
        );
    }
}

/// The fixed harness configuration every snapshot was blessed under.
/// Changing any of these invalidates (and requires re-blessing) the
/// snapshots, so they are deliberately independent of the environment.
fn golden_settings() -> Settings {
    Settings { eval_period: SimDuration::from_us(25), threads: 2, seed: 3, ..Settings::default() }
}

#[test]
fn figure_text_matches_golden_snapshots() {
    let settings = golden_settings();
    let mut matrix = Matrix::new();
    // Static tables and workload CDFs: no simulation at all.
    check_golden("tables", &figures::tables());
    check_golden("fig04", &figures::fig04());
    // Simulated figures share one matrix, like the `all` binary does.
    check_golden("fig05", &figures::fig05(&mut matrix, &settings));
    check_golden("fig06", &figures::fig06(&mut matrix, &settings));
    check_golden("fig09", &figures::fig09(&mut matrix, &settings));
    // Adversarial stress suite: policy behavior under hostile traffic.
    check_golden("stress", &figures::stress(&mut matrix, &settings));
    // Dual-backend energy differential: analytical vs IDD pricing.
    check_golden("model_diff", &figures::model_diff(&mut matrix, &settings));
}

#[test]
fn diff_rendering_is_readable() {
    assert_eq!(line_diff("a\nb\n", "a\nb\n"), None);
    let d = line_diff("a\nb\nc\n", "a\nX\nc\n").expect("texts differ");
    assert!(d.contains("line 2:"), "diff names the line: {d}");
    assert!(d.contains("-b") && d.contains("+X"), "diff shows both sides: {d}");
    let d = line_diff("a\n", "a\nextra\n").expect("texts differ");
    assert!(d.contains("only in actual"), "length changes are reported: {d}");
}

/// A perturbed configuration must *fail* the snapshot comparison with a
/// readable diff — this guards the guard: if results stopped feeding the
/// figure text, golden comparisons would silently pass everything.
#[test]
fn perturbed_config_fails_the_snapshot() {
    if blessing() {
        return; // nothing to compare against while re-blessing
    }
    let path = golden_dir().join("fig05.txt");
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden snapshot {}; bless first", path.display()));
    let perturbed = Settings { seed: 4, ..golden_settings() };
    let actual = figures::fig05(&mut Matrix::new(), &perturbed);
    let diff = line_diff(&expected, &actual).expect("a different seed must change the figure text");
    assert!(diff.contains("line "), "diff must name the diverging lines: {diff}");
}

/// Same guard for the model-differential snapshot: its run-energy tables
/// must track simulation results, not just the static mode tables.
#[test]
fn perturbed_config_fails_the_model_diff_snapshot() {
    if blessing() {
        return;
    }
    let path = golden_dir().join("model_diff.txt");
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden snapshot {}; bless first", path.display()));
    let perturbed = Settings { seed: 4, ..golden_settings() };
    let actual = figures::model_diff(&mut Matrix::new(), &perturbed);
    let diff = line_diff(&expected, &actual).expect("a different seed must change the figure text");
    assert!(diff.contains("line "), "diff must name the diverging lines: {diff}");
}
