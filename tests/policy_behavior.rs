//! Integration tests of the management policies' headline behaviors:
//! managed networks must save power while respecting the α slowdown bound.

use memnet::core::{run_pair, NetworkScale, PolicyKind, SimConfig};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn cfg(workload: &str, policy: PolicyKind, mech: Mechanism, scale: NetworkScale) -> SimConfig {
    SimConfig::builder()
        .workload(workload)
        .topology(TopologyKind::Star)
        .scale(scale)
        .policy(policy)
        .mechanism(mech)
        .alpha(0.05)
        .eval_period(SimDuration::from_us(600))
        .seed(11)
        .build()
        .unwrap()
}

#[test]
fn unaware_vwl_saves_power_within_slowdown_bound() {
    let (managed, baseline) =
        run_pair(cfg("cg.D", PolicyKind::NetworkUnaware, Mechanism::Vwl, NetworkScale::Big));
    let saved = managed.power_reduction_vs(&baseline);
    assert!(saved > 0.02, "expected real savings, got {:.1}%", 100.0 * saved);
    let degr = managed.degradation_vs(&baseline);
    assert!(degr < 0.10, "degradation {:.1}% blew past alpha", 100.0 * degr);
}

#[test]
fn unaware_roo_turns_links_off_on_bursty_workloads() {
    let (managed, baseline) =
        run_pair(cfg("sp.D", PolicyKind::NetworkUnaware, Mechanism::Roo, NetworkScale::Big));
    let off_time: f64 = managed.links.iter().map(|l| l.off_time.as_secs()).sum();
    assert!(off_time > 0.0, "ROO links never turned off on an 8%-utilized workload");
    let total_wakes: u64 = managed.links.iter().map(|l| l.wake_count).sum();
    assert!(total_wakes > 0);
    assert!(managed.power.watts() < baseline.power.watts());
}

#[test]
fn aware_saves_at_least_as_much_as_unaware_on_cold_footprints() {
    // cg.D has a large cold range; ISP should find at least the savings
    // unaware finds (paper: aware always saves more on big networks).
    let (aware, _) =
        run_pair(cfg("cg.D", PolicyKind::NetworkAware, Mechanism::VwlRoo, NetworkScale::Big));
    let (unaware, _) =
        run_pair(cfg("cg.D", PolicyKind::NetworkUnaware, Mechanism::VwlRoo, NetworkScale::Big));
    let aware_w = aware.power.watts();
    let unaware_w = unaware.power.watts();
    assert!(
        aware_w <= unaware_w * 1.05,
        "aware {aware_w:.2} W should not lose to unaware {unaware_w:.2} W"
    );
}

#[test]
fn combined_mechanism_beats_single_mechanisms() {
    let scale = NetworkScale::Big;
    let run = |mech| run_pair(cfg("is.D", PolicyKind::NetworkUnaware, mech, scale)).0.power.watts();
    let vwl = run(Mechanism::Vwl);
    let combo = run(Mechanism::VwlRoo);
    // VWL+ROO should at least match plain VWL (it subsumes its modes).
    assert!(combo <= vwl * 1.08, "VWL+ROO {combo:.2} W should be near-or-below VWL {vwl:.2} W");
}

#[test]
fn static_selection_saves_power_but_costs_performance() {
    let mut config = cfg("mg.D", PolicyKind::StaticSelection, Mechanism::Vwl, NetworkScale::Big);
    config.mapping = memnet::core::AddressMapping::PageInterleaved;
    let (stat, baseline) = run_pair(config);
    assert!(
        stat.power.watts() < baseline.power.watts(),
        "tapered links must burn less than full-width links"
    );
    // Static selection has no feedback control: its slowdown is
    // unbounded by alpha, typically well above the managed policies'.
    assert!(stat.mean_read_latency_ns >= baseline.mean_read_latency_ns);
}

#[test]
fn violation_feedback_rescues_runaway_slowdown() {
    // At a tiny alpha with a hot workload, links repeatedly overrun their
    // budgets: the controller must fall back to full power (violations)
    // instead of letting latency run away.
    let mut config = cfg("mixB", PolicyKind::NetworkUnaware, Mechanism::Vwl, NetworkScale::Small);
    config.alpha = 0.005;
    let (managed, baseline) = run_pair(config);
    let degr = managed.degradation_vs(&baseline);
    assert!(degr < 0.15, "feedback control failed: {:.1}% degradation at alpha=0.5%", 100.0 * degr);
}

#[test]
fn dvfs_saves_less_than_vwl_at_equal_alpha() {
    // Paper §VI-D: DVFS's SERDES latency overhead limits savings.
    let scale = NetworkScale::Big;
    let (vwl, base) = run_pair(cfg("cg.D", PolicyKind::NetworkAware, Mechanism::Vwl, scale));
    let (dvfs, _) = run_pair(cfg("cg.D", PolicyKind::NetworkAware, Mechanism::Dvfs, scale));
    let vwl_red = vwl.power_reduction_vs(&base);
    let dvfs_red = dvfs.power_reduction_vs(&base);
    assert!(
        dvfs_red <= vwl_red + 0.05,
        "DVFS {:.1}% should not beat VWL {:.1}% meaningfully",
        100.0 * dvfs_red,
        100.0 * vwl_red
    );
}

#[test]
fn all_policies_run_on_every_topology() {
    for kind in TopologyKind::ALL {
        for policy in [PolicyKind::FullPower, PolicyKind::NetworkUnaware, PolicyKind::NetworkAware]
        {
            let mech = if policy == PolicyKind::FullPower {
                Mechanism::FullPower
            } else {
                Mechanism::VwlRoo
            };
            let r = SimConfig::builder()
                .workload("mixE")
                .topology(kind)
                .policy(policy)
                .mechanism(mech)
                .eval_period(SimDuration::from_us(150))
                .build()
                .unwrap()
                .run();
            assert!(r.completed_reads > 0, "{kind:?}/{policy:?} moved no data");
        }
    }
}
