//! End-to-end integration tests: full simulations spanning every crate.

use memnet::core::{NetworkScale, PolicyKind, SimConfig};
use memnet::net::TopologyKind;
use memnet::policy::Mechanism;
use memnet_simcore::SimDuration;

fn base(workload: &str) -> memnet::core::SimConfigBuilder {
    SimConfig::builder().workload(workload).eval_period(SimDuration::from_us(100)).seed(7)
}

#[test]
fn full_power_run_produces_plausible_physics() {
    let r = base("mixB")
        .topology(TopologyKind::TernaryTree)
        .scale(NetworkScale::Small)
        .build()
        .unwrap()
        .run();
    // Per-HMC power in the paper's ballpark (roughly 1.5 – 4 W).
    let w = r.power.watts_per_hmc();
    assert!((1.0..5.0).contains(&w), "implausible power {w} W/HMC");
    // I/O is the single largest component even on the most heavily
    // utilized workload (mixB); the 73 % paper average is over all
    // workloads and is checked by the fig05 harness instead.
    assert!(r.power.io_fraction() > 0.35, "I/O fraction {}", r.power.io_fraction());
    assert!(r.power.idle_io_fraction() > 0.2);
    // Memory traffic flowed and completed.
    assert!(r.completed_reads > 100, "only {} reads completed", r.completed_reads);
    assert!(r.mean_read_latency_ns > 30.0, "reads cannot beat DRAM latency");
    assert!(r.mean_read_latency_ns < 2_000.0, "latency blew up");
    // No management ran.
    assert_eq!(r.violations, 0);
}

#[test]
fn channel_utilization_tracks_workload_target() {
    // mixB targets 75 % channel utilization; the closed-loop front-end
    // should land in the right neighbourhood on a short window.
    let r = base("mixB")
        .topology(TopologyKind::TernaryTree)
        .eval_period(SimDuration::from_us(300))
        .build()
        .unwrap()
        .run();
    assert!(
        (0.45..0.95).contains(&r.channel_utilization),
        "mixB channel utilization {:.2} far from 0.75 target",
        r.channel_utilization
    );
    // And link utilization attenuates below channel utilization.
    assert!(r.link_utilization < r.channel_utilization);
}

#[test]
fn deterministic_across_identical_runs() {
    let make = || {
        base("mixD")
            .topology(TopologyKind::Star)
            .policy(PolicyKind::NetworkAware)
            .mechanism(Mechanism::VwlRoo)
            .build()
            .unwrap()
            .run()
    };
    let a = make();
    let b = make();
    assert_eq!(a.completed_reads, b.completed_reads);
    assert_eq!(a.injected_accesses, b.injected_accesses);
    assert_eq!(a.violations, b.violations);
    assert!((a.power.energy.total() - b.power.energy.total()).abs() < 1e-12);
}

#[test]
fn different_seeds_change_the_run() {
    let a = base("mixD").seed(1).build().unwrap().run();
    let b = base("mixD").seed(2).build().unwrap().run();
    assert_ne!(a.completed_reads, b.completed_reads);
}

#[test]
fn hops_match_topology_depth_bounds() {
    for kind in TopologyKind::ALL {
        let r = base("cg.D")
            .topology(kind)
            .scale(NetworkScale::Big)
            .eval_period(SimDuration::from_us(50))
            .build()
            .unwrap()
            .run();
        let n = r.power.n_hmcs;
        assert_eq!(n, 30); // 30 GB / 1 GB chunks
        let topo = memnet::net::Topology::build(kind, n);
        let max_depth =
            (1..=n).map(|i| topo.depth(memnet::net::ModuleId(i - 1))).max().unwrap() as f64;
        assert!(r.avg_modules_traversed >= 1.0);
        assert!(
            r.avg_modules_traversed <= max_depth,
            "{kind:?}: hops {} beyond max depth {max_depth}",
            r.avg_modules_traversed
        );
    }
}

#[test]
fn daisychain_traverses_more_modules_than_tree() {
    let chain = base("is.D")
        .topology(TopologyKind::DaisyChain)
        .scale(NetworkScale::Big)
        .eval_period(SimDuration::from_us(50))
        .build()
        .unwrap()
        .run();
    let tree = base("is.D")
        .topology(TopologyKind::TernaryTree)
        .scale(NetworkScale::Big)
        .eval_period(SimDuration::from_us(50))
        .build()
        .unwrap()
        .run();
    assert!(
        chain.avg_modules_traversed > tree.avg_modules_traversed,
        "chain {} should exceed tree {}",
        chain.avg_modules_traversed,
        tree.avg_modules_traversed
    );
}

#[test]
fn energy_breakdown_is_all_nonnegative_and_consistent() {
    let r = base("lu.D").topology(TopologyKind::DdrxLike).build().unwrap().run();
    let e = &r.power.energy;
    for (i, v) in [e.idle_io, e.active_io, e.logic_leak, e.logic_dyn, e.dram_leak, e.dram_dyn]
        .iter()
        .enumerate()
    {
        assert!(*v >= 0.0, "category {i} negative: {v}");
    }
    let cats = r.power.watts_per_hmc_by_category();
    let total: f64 = cats.iter().sum();
    assert!((total - r.power.watts_per_hmc()).abs() < 1e-9);
}

#[test]
fn big_network_has_higher_idle_io_share_than_small() {
    let small =
        base("cg.D").topology(TopologyKind::Star).scale(NetworkScale::Small).build().unwrap().run();
    let big =
        base("cg.D").topology(TopologyKind::Star).scale(NetworkScale::Big).build().unwrap().run();
    assert!(
        big.power.idle_io_fraction() > small.power.idle_io_fraction(),
        "big {:.2} should exceed small {:.2}",
        big.power.idle_io_fraction(),
        small.power.idle_io_fraction()
    );
}
