//! Smoke tests for the perf subsystem: the suite runs, its JSON report
//! parses, carries the expected schema, and has a deterministic shape
//! across runs (timings vary; structure must not).

use memnet_perf::{run_suite, BenchReport, BENCH_SCHEMA_VERSION};
use serde::json;

#[test]
fn quick_suite_emits_a_valid_schema_versioned_report() {
    let report = run_suite(true);
    let text = report.to_json();

    // The document is valid JSON with the advertised schema version.
    let value = json::parse(&text).expect("report serializes to valid JSON");
    let version: u32 = value.get("schema_version").and_then(|v| v.num()).expect("schema field");
    assert_eq!(version, BENCH_SCHEMA_VERSION);
    assert!(!value.get("git_sha").and_then(|v| v.as_str()).expect("git_sha").is_empty());

    // And it round-trips through the typed representation.
    let back = BenchReport::from_json(&text).expect("report deserializes");
    assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
    assert!(back.quick);
    assert_eq!(back.benches.len(), report.benches.len());
    assert!(back.filename().starts_with("BENCH_"));
    assert!(back.filename().ends_with(".json"));
}

#[test]
fn suite_covers_every_component_and_gates_end_to_end() {
    let report = run_suite(true);
    let names: Vec<&str> = report.benches.iter().map(|b| b.name.as_str()).collect();
    for expected in [
        "event_queue_push_pop",
        "link_energy_pricing",
        "fault_model_draw",
        "policy_epoch_ams_isp",
        "end_to_end_small",
        "end_to_end_obs_off",
        "end_to_end_obs_on",
        "end_to_end_multi_seed_solo",
        "end_to_end_multi_seed_lockstep",
    ] {
        assert!(names.contains(&expected), "missing bench {expected:?} in {names:?}");
    }
    // Exactly the end-to-end benches carry the gated metric (the obs
    // pair additionally feeds the --obs-gate overhead comparison).
    for b in &report.benches {
        assert_eq!(
            b.events_per_sec.is_some(),
            b.name.starts_with("end_to_end"),
            "events_per_sec on the wrong bench: {}",
            b.name
        );
        assert!(b.iters > 0, "{}: zero ops", b.name);
        assert!(b.wall_ms > 0.0, "{}: zero wall time", b.name);
        assert!(b.ops_per_sec > 0.0, "{}: zero throughput", b.name);
    }
    assert!(report.benches.iter().any(|b| b.events_per_sec.unwrap_or(0.0) > 0.0));
    // The multi-seed pair carries the per-replica throughput fields, and
    // exactly that pair does.
    for b in &report.benches {
        let is_multi = b.name.starts_with("end_to_end_multi_seed");
        assert_eq!(b.replicas.is_some(), is_multi, "replicas on the wrong bench: {}", b.name);
        assert_eq!(b.events_per_sec_per_replica.is_some(), is_multi, "{}", b.name);
        if is_multi {
            assert_eq!(b.replicas, Some(memnet_perf::kernels::MULTI_SEED_K as u64));
            let agg = b.events_per_sec.unwrap();
            let per = b.events_per_sec_per_replica.unwrap();
            assert!((per * memnet_perf::kernels::MULTI_SEED_K as f64 - agg).abs() <= agg * 1e-9);
        }
    }
}

#[test]
fn report_shape_is_deterministic_across_runs() {
    let a = run_suite(true);
    let b = run_suite(true);
    assert_eq!(a.schema_version, b.schema_version);
    assert_eq!(a.git_sha, b.git_sha);
    let names = |r: &BenchReport| r.benches.iter().map(|x| x.name.clone()).collect::<Vec<_>>();
    assert_eq!(names(&a), names(&b), "bench set must not vary run to run");
    // The simulated workload is deterministic, so the end-to-end bench
    // processes the identical number of events both times.
    let events = |r: &BenchReport| {
        r.benches.iter().find(|x| x.name == "end_to_end_small").expect("end-to-end bench").iters
    };
    assert_eq!(events(&a), events(&b));
}
