//! Engine-level tests of rapid-on/off mechanics: links really turn off,
//! wake on demand, and network-aware chaining keeps response paths warm.

use memnet::core::{NetworkScale, PolicyKind, SimConfig};
use memnet::net::{Direction, LinkId, ModuleId, TopologyKind};
use memnet::policy::Mechanism;
use memnet_simcore::{SimDuration, SimTime};

fn run(policy: PolicyKind, wake_chaining: bool) -> memnet::core::RunReport {
    SimConfig::builder()
        .workload("sp.D") // 8 % utilization, bursty: ROO heaven
        .topology(TopologyKind::DaisyChain)
        .scale(NetworkScale::Big)
        .policy(policy)
        .mechanism(Mechanism::Roo)
        .alpha(0.05)
        .wake_chaining(wake_chaining)
        .eval_period(SimDuration::from_us(800))
        .seed(5)
        .build()
        .unwrap()
        .run()
}

#[test]
fn roo_links_spend_real_time_off_on_sparse_traffic() {
    let r = run(PolicyKind::NetworkUnaware, true);
    let window = r.power.window;
    let total_off: SimDuration = r.links.iter().map(|l| l.off_time).sum();
    let capacity = SimDuration::from_ps(window.as_ps() * r.links.len() as u64);
    let off_share = total_off.ratio(capacity);
    assert!(
        off_share > 0.10,
        "sp.D at 8% utilization should idle links off >10% of the time, got {:.1}%",
        100.0 * off_share
    );
    // And that off time translates into idle-I/O energy savings vs. a
    // full-power run of the same setup.
    let fp = SimConfig::builder()
        .workload("sp.D")
        .topology(TopologyKind::DaisyChain)
        .scale(NetworkScale::Big)
        .eval_period(SimDuration::from_us(800))
        .seed(5)
        .build()
        .unwrap()
        .run();
    assert!(r.power.energy.idle_io < fp.power.energy.idle_io);
}

#[test]
fn every_wakeup_is_paid_for_by_waking_time() {
    let r = run(PolicyKind::NetworkUnaware, true);
    for l in &r.links {
        if l.wake_count > 0 {
            // Each wake costs exactly 14 ns of waking residency.
            let expected = SimDuration::from_ns(14 * l.wake_count);
            assert_eq!(
                l.waking_time, expected,
                "link {:?}: {} wakes but {} waking time",
                l.link, l.wake_count, l.waking_time
            );
        } else {
            assert!(l.waking_time.is_zero());
        }
    }
}

#[test]
fn deep_daisychain_tail_links_sleep_more_than_the_root() {
    let r = run(PolicyKind::NetworkAware, true);
    let n = r.power.n_hmcs;
    let root_req = &r.links[LinkId::of(ModuleId(0), Direction::Request).0];
    let tail_req = &r.links[LinkId::of(ModuleId(n - 1), Direction::Request).0];
    assert!(
        tail_req.off_time >= root_req.off_time,
        "traffic attenuation: the tail ({}) must sleep at least as much as the root ({})",
        tail_req.off_time,
        root_req.off_time
    );
}

#[test]
fn chaining_does_not_break_correctness_or_slow_the_network() {
    let with = run(PolicyKind::NetworkAware, true);
    let without = run(PolicyKind::NetworkAware, false);
    // Both complete comparable work.
    assert!(with.completed_reads > 0 && without.completed_reads > 0);
    // Chaining hides response wakeups, so mean read latency should not be
    // meaningfully worse with it enabled.
    assert!(
        with.mean_read_latency_ns <= without.mean_read_latency_ns * 1.10,
        "chaining {} ns vs no-chaining {} ns",
        with.mean_read_latency_ns,
        without.mean_read_latency_ns
    );
}

#[test]
fn slow_wakeup_sensitivity_increases_latency_cost() {
    let fast = run(PolicyKind::NetworkUnaware, true);
    let slow = SimConfig::builder()
        .workload("sp.D")
        .topology(TopologyKind::DaisyChain)
        .scale(NetworkScale::Big)
        .policy(PolicyKind::NetworkUnaware)
        .mechanism(Mechanism::Roo)
        .roo_params(memnet::net::mech::RooParams::slow())
        .eval_period(SimDuration::from_us(800))
        .seed(5)
        .build()
        .unwrap()
        .run();
    // 20 ns wakeups must charge 20 ns per wake in the accounting.
    for l in &slow.links {
        if l.wake_count > 0 {
            assert_eq!(l.waking_time, SimDuration::from_ns(20 * l.wake_count));
        }
    }
    let _ = fast; // both runs complete; relative power checked in fig18
    assert_eq!(SimTime::ZERO.as_ps(), 0);
}
