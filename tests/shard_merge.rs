//! Sweep sharding and deterministic merge: partition properties over
//! every shard width, byte-identity of shard→merge against the
//! unsharded run (including a faults+obs configuration), and the
//! `memnet sweep` / `memnet merge` CLI exit contract.

use std::collections::HashSet;
use std::process::Command;

use memnet::bench::figures::SWEEP_FIGURES;
use memnet::bench::shard::{self, Shard, SweepPlan};
use memnet::bench::{Matrix, Settings};
use memnet::simcore::SimDuration;
use proptest::prelude::*;

fn all_figures() -> Vec<String> {
    SWEEP_FIGURES.iter().map(|s| s.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every shard width n in 1..=16, the shards partition the full
    /// figure matrix: each cell is owned by exactly one shard, the
    /// per-shard key lists cover the whole plan, and neither the plan
    /// nor the partition moves when the thread count changes.
    #[test]
    fn shards_partition_the_plan_at_every_width(n in 1u32..=16, threads in 1usize..=8) {
        let figures = all_figures();
        let base = Settings::default();
        let plan = SweepPlan::new(&figures, &base).unwrap();
        let alt = SweepPlan::new(&figures, &Settings { threads, ..base }).unwrap();
        prop_assert_eq!(
            &plan.set_digest, &alt.set_digest,
            "the plan identity is thread-count independent"
        );

        // Disjoint: exactly one shard owns each fingerprint.
        for (_, _, fp) in plan.cells() {
            let owners: Vec<u32> =
                (0..n).filter(|&i| Shard { index: i, of: n }.contains(fp)).collect();
            prop_assert_eq!(owners.len(), 1, "cell {} owned by shards {:?}", fp, &owners);
            prop_assert_eq!(owners[0], shard::assign(fp, n));
        }

        // Complete and stable: the shard slices sum to the plan, with no
        // duplicates, and are identical under a different thread count.
        let mut covered = HashSet::new();
        let mut total = 0usize;
        for index in 0..n {
            let piece = Shard { index, of: n };
            let cells = plan.shard_cells(piece);
            prop_assert_eq!(
                &cells, &alt.shard_cells(piece),
                "shard {} must not move with the thread count", piece
            );
            total += cells.len();
            for cell in cells {
                prop_assert!(covered.insert(cell), "duplicate (key, seed) across shards");
            }
        }
        prop_assert_eq!(total, plan.len(), "shards cover every cell exactly once");
    }
}

/// Library-level byte-identity on a configuration that exercises both
/// the fault-injection key dimension and per-epoch observability: a
/// 3-way shard→merge of the `faults` figure with `obs` on reproduces
/// the unsharded sweep text exactly.
#[test]
fn sharded_merge_is_byte_identical_including_faults_and_obs() {
    let figures = vec!["faults".to_owned()];
    let settings = Settings {
        eval_period: SimDuration::from_us(20),
        threads: 1,
        obs: true,
        ..Settings::default()
    };
    let plan = SweepPlan::new(&figures, &settings).unwrap();
    assert!(plan.len() > 3, "the faults figure spans more cells than shards");

    let mut matrix = Matrix::new();
    let (unsharded, full_stats) =
        shard::run_shard(&plan, Shard::full(), &settings, &mut matrix).unwrap();

    let mut files = Vec::new();
    let mut requested = 0usize;
    for index in 0..3 {
        let piece = Shard { index, of: 3 };
        // Fresh matrix per shard: each slice simulates independently, as
        // separate processes or daemon workers would.
        let mut m = Matrix::new();
        let (text, stats) = shard::run_shard(&plan, piece, &settings, &mut m).unwrap();
        requested += stats.requested;
        files.push(shard::parse_sweep_file(&format!("shard {piece}"), &text).unwrap());
    }

    let merged = shard::merge(&files).unwrap();
    assert_eq!(merged.text, unsharded, "3-way merge == unsharded sweep, bytewise");
    assert_eq!(merged.cells, plan.len());
    assert_eq!(merged.shards, 3);
    assert_eq!(requested, full_stats.requested, "shard workloads sum to the whole");
    assert_eq!(merged.stats.requested, plan.len(), "merge aggregates the per-shard counters");
}

/// A `memnet` invocation with a hermetic environment: no cache, a short
/// evaluation window, and none of the behavior-changing env knobs.
fn memnet() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memnet"));
    for var in ["MEMNET_FAULTS", "MEMNET_TRACE", "MEMNET_AUDIT", "MEMNET_ENERGY_BACKEND"] {
        cmd.env_remove(var);
    }
    for var in ["MEMNET_SEED", "MEMNET_THREADS", "MEMNET_CACHE_DIR"] {
        cmd.env_remove(var);
    }
    cmd.env("MEMNET_NO_CACHE", "1").env("MEMNET_EVAL_US", "20");
    cmd
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("memnet-shard-merge-{}-{name}", std::process::id()))
}

/// End-to-end CLI contract: `sweep --shard i/3` three times, `merge
/// --check` validates coverage without writing, `merge --out`
/// recombines byte-identically to the unsharded `sweep`, and dropping a
/// shard fails with exit 2 naming the missing slice and its cells.
#[test]
fn cli_shard_sweep_and_merge_round_trip() {
    let full = tmp("full.jsonl");
    let merged = tmp("merged.jsonl");
    let shards: Vec<_> = (0..3).map(|i| tmp(&format!("shard-{i}.jsonl"))).collect();

    // Unsharded reference and the three slices.
    let out = memnet()
        .args(["sweep", "--figures", "model_diff", "--out", full.to_str().unwrap()])
        .output()
        .expect("memnet binary runs");
    assert!(out.status.success(), "unsharded sweep: {}", String::from_utf8_lossy(&out.stderr));
    for (i, path) in shards.iter().enumerate() {
        let out = memnet()
            .args([
                "sweep",
                "--figures",
                "model_diff",
                "--shard",
                &format!("{i}/3"),
                "--out",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("memnet binary runs");
        assert!(out.status.success(), "shard {i}/3: {}", String::from_utf8_lossy(&out.stderr));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("[sweep {i}/3]")),
            "the log line carries the shard id: {stderr}"
        );
    }
    let shard_args: Vec<&str> = shards.iter().map(|p| p.to_str().unwrap()).collect();

    // --check validates coverage and writes nothing.
    let out =
        memnet().args(["merge", "--check"]).args(&shard_args).output().expect("memnet binary runs");
    assert!(out.status.success(), "merge --check: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("check ok"), "dry run reports coverage: {stderr}");
    assert!(!merged.exists(), "--check writes no output");

    // The real merge is byte-identical to the unsharded sweep, and its
    // aggregate counters sum to the full cell count.
    let out = memnet()
        .args(["merge", "--out", merged.to_str().unwrap()])
        .args(&shard_args)
        .output()
        .expect("memnet binary runs");
    assert!(out.status.success(), "merge: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("3 shard(s), 6 cell(s)") && stderr.contains("6 requested"),
        "merge reports aggregate counts summing to the unsharded totals: {stderr}"
    );
    let reference = std::fs::read(&full).unwrap();
    assert!(!reference.is_empty());
    assert_eq!(std::fs::read(&merged).unwrap(), reference, "merge == unsharded, bytewise");

    // A missing shard is a validation failure: exit 2, naming the
    // missing slice and an example of the cells it owns.
    let out = memnet()
        .args(["merge", "--check", shard_args[0], shard_args[2]])
        .output()
        .expect("memnet binary runs");
    assert_eq!(out.status.code(), Some(2), "missing shard is exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("missing shard 1/3") && stderr.contains("e.g."),
        "the error names the missing shard and its cells: {stderr}"
    );

    for path in shards.iter().chain([&full, &merged]) {
        let _ = std::fs::remove_file(path);
    }
}
