//! Adversarial stress fixtures: every `adv.*` workload is engineered to
//! attack one power-management mechanism (controller phase estimates, ROO
//! wake chains, the AMS rescue pool, epoch-aligned duty cycles). Each
//! fixture must survive a fully audited run under the policies it
//! targets, and stay deterministic across sweep thread counts.

use memnet::core::{PolicyKind, SimConfig, SimConfigBuilder};
use memnet::policy::Mechanism;
use memnet::workload::stress;
use memnet_simcore::{AuditLevel, SimDuration};

fn base(workload: &str) -> SimConfigBuilder {
    SimConfig::builder()
        .workload(workload)
        .eval_period(SimDuration::from_us(200))
        .seed(5)
        .audit(AuditLevel::Full)
}

#[test]
fn every_stress_fixture_runs_clean_under_full_audit() {
    // Two epochs' worth of every pattern against both managed policies
    // running the mechanisms the patterns attack, plus the unmanaged
    // baseline: 12 fully audited runs.
    let cases = [
        (PolicyKind::FullPower, Mechanism::FullPower),
        (PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
        (PolicyKind::NetworkAware, Mechanism::VwlRoo),
    ];
    for name in stress::names() {
        for &(policy, mech) in &cases {
            let r = base(name).policy(policy).mechanism(mech).build().unwrap().run();
            assert!(r.audit.checks_run > 0, "{name} {policy:?}/{mech:?} ran zero checks");
            assert!(
                r.audit.is_clean(),
                "{name} {policy:?}/{mech:?} audit violations: {:?}",
                r.audit.violations
            );
            assert!(r.injected_accesses > 0, "{name} {policy:?}/{mech:?} generated no traffic");
        }
    }
}

#[test]
fn wakestorm_attacks_powered_off_links() {
    // The whole point of the storm is to catch every ROO link asleep: an
    // aware VWL+ROO run must spend most of its time with links off yet
    // still serve every sweep (requests complete, audits stay green).
    let r = base("adv.wakestorm")
        .policy(PolicyKind::NetworkAware)
        .mechanism(Mechanism::VwlRoo)
        .build()
        .unwrap()
        .run();
    assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
    // Sparse storm traffic: links are powered down most of the run.
    assert!(
        r.power.idle_io_fraction() > 0.05,
        "idle I/O {:.3} — storms never let links power down",
        r.power.idle_io_fraction()
    );
    assert!(r.completed_reads > 0, "no storm request completed");
    // Wake-chain latency is the attack's signature: mean read latency
    // must exceed the fault-free full-power latency of the same pattern.
    let fp = base("adv.wakestorm").build().unwrap().run();
    assert!(
        r.mean_read_latency_ns > fp.mean_read_latency_ns,
        "storm latency {:.1} ns not above full-power {:.1} ns",
        r.mean_read_latency_ns,
        fp.mean_read_latency_ns
    );
}

#[test]
fn stress_runs_are_thread_count_invariant() {
    // Metamorphic: sweeping the fixtures at 1 vs 4 threads must be
    // byte-identical — adversarial schedules must not introduce any
    // order dependence.
    let configs: Vec<SimConfig> = stress::names()
        .into_iter()
        .map(|name| {
            base(name)
                .policy(PolicyKind::NetworkAware)
                .mechanism(Mechanism::VwlRoo)
                .build()
                .unwrap()
        })
        .collect();
    let serial = memnet::core::sweep(configs.clone(), 1);
    let parallel = memnet::core::sweep(configs, 4);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            serde::json::to_string(s),
            serde::json::to_string(p),
            "{} diverged between thread counts",
            s.workload
        );
    }
}

#[test]
fn duty_flip_produces_epoch_aligned_idle() {
    // The flipper is silent every odd management epoch; with ROO that
    // idle must translate into real power savings vs full power.
    let fp = base("adv.flip").build().unwrap().run();
    let roo = base("adv.flip")
        .policy(PolicyKind::NetworkAware)
        .mechanism(Mechanism::VwlRoo)
        .build()
        .unwrap()
        .run();
    assert!(roo.audit.is_clean(), "{:?}", roo.audit.violations);
    assert!(
        roo.power.watts() < fp.power.watts(),
        "ROO {:.2} W not below full power {:.2} W on a half-idle workload",
        roo.power.watts(),
        fp.power.watts()
    );
}
